//! `ftsim` — explore fat-trees from the command line.
//!
//! ```text
//! ftsim tree       --n 256 --w 64                 capacity profile (Fig. 1)
//! ftsim topology   --topology kary:k=8,over=4 [--format json]
//! ftsim schedule   --n 256 --w 64 --workload perm [--scheduler thm1] [--seed 1]
//! ftsim online     --n 256 --w 64 --workload krel:8
//! ftsim simulate   --n 256 --w 64 --workload complement [--switch partial] [--arb random]
//!                  [--format json]
//! ftsim report     --n 256 --w 64 --workload perm [--format json]
//! ftsim trace      --n 64 --workload perm [--engine online|simulate|schedule]
//!                  [--events 4096] [--format jsonl|csv] [--verify 1]
//! ftsim shard      --n 256 --w 64 --workload perm --shards 4
//!                  [--transport inproc|shm|pipe] [--drop 0.1] [--dup 0.1]
//!                  [--corrupt 0.1] [--delay-ms 5] [--fault-seed 7]
//!                  [--timeout-ms 5000] [--retries 4] [--format text|json]
//!                  [--metrics-addr HOST:PORT]
//! ftsim serve      --n 256 --w 64 [--addr 127.0.0.1:0] [--slots 8]
//!                  [--window-us 200] [--inflight 64] [--idle-ms 5000]
//!                  [--max-requests 0] [--metrics 0|1]
//!                  [--metrics-addr HOST:PORT]
//! ftsim bench-client --addr HOST:PORT --n 256 --w 64 [--clients 4]
//!                  [--requests 200] [--messages 64] [--seed 1985]
//!                  [--engine schedule|online] [--mode closed|open|burst|dead]
//!                  [--depth 8] [--hold-ms 500] [--verify 1]
//! ftsim metrics-scrape --addr HOST:PORT [--path /metrics.json]
//! ftsim universality --net mesh3d --side 4
//! ftsim emulate    --net hypercube --dim 6
//! ftsim layout     --n 1024 --w 128
//! ```
//!
//! Workloads: `perm`, `complement`, `reversal`, `transpose`, `shuffle`,
//! `fem`, `hotspot`, `krel:K`, `local:P` (P = far-probability percent),
//! `exchange`.
//!
//! Every tree-running subcommand (`tree`, `topology`, `schedule`, `online`,
//! `simulate`, `report`, `trace`, `shard`, `layout`) accepts
//! `--topology SPEC` instead of `--n`/`--w` and then runs on the
//! generalized topology through its binary embedding
//! ([`fat_tree::topology::Embedded`]). Specs (`fat_tree::topology::parse_spec`):
//! `universal:n=256,w=64`, `constant:n=64,c=4`, `doubling:n=64`,
//! `perlevel:n=16,caps=8/4/2/1/1`, `degree:n=64,w=32,d=2`,
//! `kary:k=8,over=4` (Al-Fares-style k-ary pods, k³/4 servers), and
//! `twolayer:r=48,p=24,n=1000` (Solnushkin two-layer, radix-r switches).
//! Workloads are generated over the topology's *real* processor ids and
//! mapped onto the padded tree; the collectives (`allreduce`/`alltoall`)
//! default their pod size to the topology's own pods and work for
//! non-power-of-two pods. `serve` and `bench-client` accept binary
//! `universal:` specs (the streaming engine serves that family);
//! `universality`, `emulate`, and `metrics-scrape` reject the flag.
//! `ftsim topology` prints the per-level structure, the permutation-λ
//! lower bound, and the hardware cost model (switches, cables, wires,
//! bisection, volume proxy) as text or one `ftsim-topology/v1` JSON line.
//!
//! Streamed workloads (lazy generators, never materialized by `simulate`):
//! `streamperm`, `bursty[:BURST]` (2n messages in bursts of BURST, default
//! 8), `incast[:FANIN]` (FANIN sources per sink over 4 waves, default n/2),
//! `allreduce[:POD]` (ring reduce-scatter + all-gather over pods, default
//! n/4), `alltoall[:POD]` (full exchange inside each pod, default n/8).
//! Every command accepts them; `simulate` feeds the generator straight into
//! the arena via the streamed ingest path.
//!
//! `report` runs the workload through every engine with a
//! [`MetricsRecorder`] and prints the per-level λ breakdown, on-line
//! contention, channel load histograms, and cascade matching statistics
//! (one JSON object with `--format json`). `trace` captures packed events
//! from one engine in a ring buffer and writes them as JSONL or CSV;
//! `--verify 1` re-parses the JSONL and fails on any mismatch (with any
//! output format). `shard` runs the workload through the distributed
//! sharded engine — worker threads over channels (`--transport inproc`)
//! or zero-copy shared-memory rings (`--transport shm`), or worker
//! processes speaking frames over pipes (`--transport pipe`), optionally
//! under injected frame faults — and checks the result is byte-identical
//! to the single-arena engine. The internal `shard-worker` command is what
//! `--transport pipe` spawns; it is not for interactive use.
//!
//! `serve` runs the streaming scheduler service: concurrent clients submit
//! routing requests over checksummed frames, small requests coalesce into
//! shared arena passes, and responses are byte-identical to solo runs. It
//! prints one `ftsim-serve/v1` JSON line when listening (with the resolved
//! address) and one summary line at shutdown; it stops on stdin EOF or
//! after `--max-requests`. `bench-client` drives a running server with N
//! concurrent connections (closed-loop, fixed-depth open-loop, burst, or
//! dead-client modes) and prints a `ftsim-serve/v1` bench summary;
//! `--verify 1` recomputes every response solo in-process and fails on any
//! mismatch.
//!
//! `serve --metrics-addr` binds a second listener exposing live telemetry
//! without touching the service port: `/metrics` (Prometheus text),
//! `/metrics.json` (a `ftsim-metrics/v1` document), and `/spans`
//! (request-span JSONL replayable through [`parse_jsonl`]).
//! `shard --metrics-addr` exposes live per-link frame / retry / checksum
//! counters the same way while the coordinator runs. `metrics-scrape`
//! fetches one page over plain HTTP/1.0 and prints it — the smoke path
//! needs no curl.

use fat_tree::concentrator::{Cascade, Concentrator, MatchingArena};
use fat_tree::core::rng::SplitMix64;
use fat_tree::layout::FatTreeLayout;
use fat_tree::networks::{
    Butterfly, CubeConnectedCycles, FixedConnectionNetwork, Hypercube, Mesh2D, Mesh3D, Ring,
    ShuffleExchange, Torus2D, TreeMachine,
};
use fat_tree::prelude::*;
use fat_tree::sched::online::online_bound_shape;
use fat_tree::sched::SchedArena;
use fat_tree::shard::{run_sharded, run_sharded_with, FaultPlan, ShardConfig, TransportKind};
use fat_tree::sim::{run_to_completion_with, Arbitration};
use fat_tree::telemetry::parse_jsonl;
use fat_tree::universal::Emulation;
use fat_tree::workloads;
use fat_tree::workloads::{
    AllReduceStream, AllToAllStream, BurstyStream, IncastStream, PermutationStream, PodAllReduce,
    PodAllToAll,
};
use std::collections::HashMap;
use std::process::exit;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        usage();
        exit(2);
    };
    let opts = parse_opts(args.collect());
    match cmd.as_str() {
        "tree" => cmd_tree(&opts),
        "topology" => cmd_topology(&opts),
        "schedule" => cmd_schedule(&opts),
        "online" => cmd_online(&opts),
        "simulate" => cmd_simulate(&opts),
        "report" => cmd_report(&opts),
        "trace" => cmd_trace(&opts),
        "shard" => cmd_shard(&opts),
        "shard-worker" => {
            // Internal: the pipe-transport worker half. Speaks frames on
            // stdin/stdout until shutdown or EOF.
            if let Err(e) =
                fat_tree::shard::run_pipe(std::io::stdin().lock(), std::io::stdout().lock())
            {
                eprintln!("shard-worker: {e}");
                exit(1);
            }
        }
        "serve" => cmd_serve(&opts),
        "bench-client" => cmd_bench_client(&opts),
        "metrics-scrape" => cmd_metrics_scrape(&opts),
        "universality" => cmd_universality(&opts),
        "emulate" => cmd_emulate(&opts),
        "layout" => cmd_layout(&opts),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command: {other}");
            usage();
            exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: ftsim <tree|topology|schedule|online|simulate|report|trace|shard|serve|bench-client|metrics-scrape|universality|emulate|layout> [--key value]…\n\
         see the module docs (src/bin/ftsim.rs) for options"
    );
}

fn parse_opts(args: Vec<String>) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut it = args.into_iter();
    while let Some(k) = it.next() {
        let Some(key) = k.strip_prefix("--") else {
            eprintln!("expected --key, got {k}");
            exit(2);
        };
        let Some(v) = it.next() else {
            eprintln!("missing value for --{key}");
            exit(2);
        };
        map.insert(key.to_string(), v);
    }
    map
}

fn get_f64(opts: &HashMap<String, String>, key: &str, default: f64) -> f64 {
    opts.get(key).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--{key} expects a number, got {v}");
            exit(2)
        })
    })
}

fn get_u32(opts: &HashMap<String, String>, key: &str, default: u32) -> u32 {
    opts.get(key).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--{key} expects an integer, got {v}");
            exit(2)
        })
    })
}

/// The machine a tree-running subcommand works on: a plain binary fat-tree
/// from `--n`/`--w`, or any generalized topology from `--topology SPEC`,
/// compiled onto its padded binary embedding. Workloads are generated over
/// the *real* processor ids (`0..leaves()`) and mapped onto the padded
/// tree; for the binary family the map is the identity and every engine
/// input is byte-identical to the pre-topology code path.
struct Machine {
    emb: Embedded,
    /// `--topology` was given (drives spec-aware output and pod defaults).
    explicit: bool,
}

impl Machine {
    fn tree(&self) -> &FatTree {
        self.emb.tree()
    }

    fn leaves(&self) -> u32 {
        self.emb.leaves()
    }

    fn spec(&self) -> &str {
        self.emb.topology().spec()
    }

    /// Map a real-id workload onto the padded tree (a clone when binary).
    fn map(&self, msgs: &MessageSet) -> MessageSet {
        self.emb.map_set(msgs)
    }

    /// Extra JSON field announcing the topology, or empty on the classic
    /// `--n`/`--w` path so existing consumers see unchanged documents.
    fn json_field(&self) -> String {
        if self.explicit {
            format!("\"topology\":\"{}\",", self.spec())
        } else {
            String::new()
        }
    }

    /// One text line announcing the embedding, printed only under
    /// `--topology` so classic output stays byte-identical.
    fn announce(&self) {
        if self.explicit {
            println!(
                "topology {}: {} processors embedded on a padded binary tree of n = {}",
                self.spec(),
                self.leaves(),
                self.emb.padded_n()
            );
        }
    }
}

/// The one shared `--topology` resolver: every subcommand gets its machine
/// here, so bad specs die identically everywhere (exit 2).
fn machine_from(opts: &HashMap<String, String>) -> Machine {
    match opts.get("topology") {
        Some(spec) => {
            if opts.contains_key("n") || opts.contains_key("w") {
                eprintln!("--topology replaces --n/--w: sizes live in the spec ({spec})");
                exit(2);
            }
            Machine {
                emb: Embedded::new(parse_topology(spec)),
                explicit: true,
            }
        }
        None => {
            let n = get_u32(opts, "n", 256);
            let w = get_u32(opts, "w", (n / 4).max(1)) as u64;
            Machine {
                emb: Embedded::new(Topology::binary(
                    n,
                    CapacityProfile::Universal { root_capacity: w },
                )),
                explicit: false,
            }
        }
    }
}

fn parse_topology(spec: &str) -> Topology {
    parse_spec(spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2)
    })
}

/// Subcommands with no fat-tree to run on refuse the flag loudly instead
/// of silently ignoring it.
fn reject_topology(opts: &HashMap<String, String>, cmd: &str, why: &str) {
    if opts.contains_key("topology") {
        eprintln!("--topology does not apply to `{cmd}`: {why}");
        exit(2);
    }
}

/// `serve`/`bench-client` speak the binary universal engine's `(n, w)`
/// wire protocol: accept `--topology universal:n=..,w=..` for uniformity
/// and reject other families with a clear error.
fn universal_nw_from(opts: &HashMap<String, String>, cmd: &str) -> (u32, u64) {
    if let Some(spec) = opts.get("topology") {
        if opts.contains_key("n") || opts.contains_key("w") {
            eprintln!("--topology replaces --n/--w: sizes live in the spec ({spec})");
            exit(2);
        }
        let topo = parse_topology(spec);
        match topo.binary_profile() {
            Some(CapacityProfile::Universal { root_capacity }) => {
                (topo.leaves() as u32, *root_capacity)
            }
            _ => {
                eprintln!(
                    "`{cmd}` serves the binary universal family only; --topology {spec} \
                     is not servable (use universal:n=..,w=..)"
                );
                exit(2);
            }
        }
    } else {
        let n = get_u32(opts, "n", 256);
        (n, get_u32(opts, "w", (n / 4).max(1)) as u64)
    }
}

/// Generalized topologies can have any processor count; the bit-twiddling
/// workloads only speak powers of two.
fn require_pow2_procs(n: u32, what: &str, m: &Machine) {
    if !n.is_power_of_two() {
        eprintln!(
            "workload {what} needs a power-of-two processor count, but topology {} has {n} \
             (modular workloads: perm, complement, krel:K, local:P, hotspot, allreduce, alltoall)",
            m.spec()
        );
        exit(2);
    }
}

/// Generate the workload over the machine's *real* processor ids. Callers
/// map the result through [`Machine::map`] before handing it to an engine.
fn workload_from(opts: &HashMap<String, String>, m: &Machine, rng: &mut SplitMix64) -> MessageSet {
    let n = m.leaves();
    let spec = opts.get("workload").map(String::as_str).unwrap_or("perm");
    match spec.split_once(':') {
        Some(("krel", k)) => workloads::balanced_k_relation(n, k.parse().unwrap_or(4), rng),
        Some(("local", p)) => {
            let pf = p.parse::<f64>().unwrap_or(30.0) / 100.0;
            workloads::local_traffic(n, 2, pf.clamp(0.01, 0.99), rng)
        }
        _ => match spec {
            "perm" => workloads::random_permutation(n, rng),
            "complement" => workloads::bit_complement(n),
            "reversal" => {
                require_pow2_procs(n, "reversal", m);
                workloads::bit_reversal(n)
            }
            "transpose" => workloads::transpose(n),
            "shuffle" => {
                require_pow2_procs(n, "shuffle", m);
                workloads::perfect_shuffle(n)
            }
            "fem" => {
                require_pow2_procs(n, "fem", m);
                workloads::FemGrid::with_n(n).sweep_messages_morton()
            }
            "hotspot" => workloads::all_to_one(n, 0),
            "exchange" => {
                require_pow2_procs(n, "exchange", m);
                workloads::total_exchange(n)
            }
            other => match stream_from(opts, m) {
                Some(stream) => stream.collect_set(),
                None => {
                    eprintln!("unknown workload: {other}");
                    exit(2);
                }
            },
        },
    }
}

/// Parse a streamed-workload spec into a lazy generator over *real*
/// processor ids, or `None` when the spec names one of the materialized
/// workloads above. Specs take an optional `:ARG` suffix (burst size,
/// fan-in, pod size). Under `--topology` the collectives default their pod
/// size to the topology's own pods and run in modular arithmetic, so
/// non-power-of-two pod sizes work.
fn stream_from(opts: &HashMap<String, String>, m: &Machine) -> Option<Box<dyn MessageStream>> {
    let n = m.leaves();
    let spec = opts.get("workload").map(String::as_str).unwrap_or("perm");
    let seed = get_u32(opts, "seed", 1985) as u64;
    let (name, arg) = match spec.split_once(':') {
        Some((name, arg)) => (name, Some(arg)),
        None => (spec, None),
    };
    let arg_or = |default: u32| -> u32 {
        arg.map_or(default, |v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("workload {name}: expected an integer after ':', got {v:?}");
                exit(2)
            })
        })
    };
    Some(match name {
        "streamperm" => {
            require_pow2_procs(n, "streamperm", m);
            Box::new(PermutationStream::new(n, seed))
        }
        "bursty" => {
            require_pow2_procs(n, "bursty", m);
            let burst = arg_or(8).max(1);
            Box::new(BurstyStream::new(n, 2 * n as usize, burst, seed))
        }
        "incast" => {
            require_pow2_procs(n, "incast", m);
            let fanin = arg_or((n / 2).max(1)).clamp(1, n.saturating_sub(1).max(1));
            Box::new(IncastStream::new(n, fanin, 4, seed))
        }
        "allreduce" => {
            if m.explicit {
                let pod = arg_or(m.emb.topology().pod()).clamp(2, n);
                if !n.is_multiple_of(pod) {
                    eprintln!("workload allreduce: pod size {pod} does not divide {n} processors");
                    exit(2);
                }
                Box::new(PodAllReduce::new(n, pod, seed))
            } else {
                let pod = arg_or((n / 4).max(2)).clamp(2, n);
                if !pod.is_power_of_two() {
                    eprintln!("workload allreduce: pod size {pod} is not a power of two");
                    exit(2);
                }
                Box::new(AllReduceStream::new(n, pod, seed))
            }
        }
        "alltoall" => {
            if m.explicit {
                let pod = arg_or(m.emb.topology().pod()).clamp(2, n);
                if !n.is_multiple_of(pod) {
                    eprintln!("workload alltoall: pod size {pod} does not divide {n} processors");
                    exit(2);
                }
                Box::new(PodAllToAll::new(n, pod))
            } else {
                let pod = arg_or((n / 8).max(2)).clamp(2, n);
                if !pod.is_power_of_two() {
                    eprintln!("workload alltoall: pod size {pod} is not a power of two");
                    exit(2);
                }
                Box::new(AllToAllStream::new(n, pod))
            }
        }
        _ => return None,
    })
}

fn network_from(opts: &HashMap<String, String>) -> Box<dyn FixedConnectionNetwork> {
    let name = opts.get("net").map(String::as_str).unwrap_or("mesh3d");
    let side = get_u32(opts, "side", 4) as usize;
    let dim = get_u32(opts, "dim", 6);
    match name {
        "mesh2d" => Box::new(Mesh2D::new(side, side)),
        "mesh3d" => Box::new(Mesh3D::new(side)),
        "torus" => Box::new(Torus2D::new(side.max(3))),
        "hypercube" => Box::new(Hypercube::new(dim)),
        "tree" => Box::new(TreeMachine::new(dim)),
        "butterfly" => Box::new(Butterfly::new(dim.min(10))),
        "ccc" => Box::new(CubeConnectedCycles::new(dim.clamp(3, 10))),
        "shuffle" => Box::new(ShuffleExchange::new(dim)),
        "ring" => Box::new(Ring::new((side * side).max(8))),
        other => {
            eprintln!("unknown network: {other}");
            exit(2);
        }
    }
}

fn rng_from(opts: &HashMap<String, String>) -> SplitMix64 {
    SplitMix64::seed_from_u64(get_u32(opts, "seed", 1985) as u64)
}

fn cmd_tree(opts: &HashMap<String, String>) {
    let m = machine_from(opts);
    if m.explicit {
        let topo = m.emb.topology();
        println!(
            "topology {}: {} processors, {} switches, embedded on a padded binary tree of n = {}",
            topo.spec(),
            topo.leaves(),
            topo.cost().switches,
            m.emb.padded_n()
        );
        print!("{}", topo.render_levels());
        println!("embedded binary capacity profile:");
        println!("{}", m.tree().render_levels());
        return;
    }
    let ft = m.tree();
    println!(
        "universal fat-tree: n = {}, root capacity w = {}, total wires {}",
        ft.n(),
        ft.root_capacity(),
        ft.total_wires()
    );
    println!("{}", ft.render_levels());
}

/// Describe a topology: per-level structure, the permutation-λ lower
/// bound, and the §IV hardware cost model — text or one
/// `ftsim-topology/v1` JSON line.
fn cmd_topology(opts: &HashMap<String, String>) {
    let m = machine_from(opts);
    let topo = m.emb.topology();
    let bound = topo.lambda_perm_bound();
    let cost = topo.cost();
    if opts.get("format").map(String::as_str) == Some("json") {
        let levels: Vec<String> = (0..=topo.depth())
            .map(|t| {
                let c = topo.chan()[t as usize];
                let (nodes, arity) = if t == topo.depth() {
                    (topo.leaves(), 0) // arity 0 marks the processor level
                } else {
                    (topo.nodes_at(t), topo.arities()[t as usize] as u64)
                };
                format!(
                    "{{\"level\":{t},\"nodes\":{nodes},\"arity\":{arity},\"up\":{},\
                     \"down\":{},\"parallel\":{},\"cap\":{}}}",
                    c.up,
                    c.down,
                    c.parallel,
                    c.cap_up(),
                )
            })
            .collect();
        println!(
            "{{\"schema\":\"ftsim-topology/v1\",\"family\":\"{}\",\"spec\":\"{}\",\
             \"leaves\":{},\"pod\":{},\"padded_n\":{},\"binary_height\":{},\"identity_map\":{},\
             \"levels\":[{}],\"lambda_perm_bound\":{bound:.6},\
             \"cost\":{{\"switches\":{},\"cables\":{},\"wires\":{},\"bisection\":{},\
             \"volume_proxy\":{:.3}}}}}",
            topo.family().tag(),
            topo.spec(),
            topo.leaves(),
            topo.pod(),
            m.emb.padded_n(),
            m.tree().height(),
            m.emb.is_identity(),
            levels.join(","),
            cost.switches,
            cost.cables,
            cost.wires,
            cost.bisection,
            cost.volume_proxy,
        );
        return;
    }
    println!(
        "topology {} ({} family): {} processors in pods of {}, {} switches",
        topo.spec(),
        topo.family().tag(),
        topo.leaves(),
        topo.pod(),
        cost.switches
    );
    print!("{}", topo.render_levels());
    println!(
        "permutation λ lower bound {bound:.2}; embedding: padded binary n = {} (height {}, {})",
        m.emb.padded_n(),
        m.tree().height(),
        if m.emb.is_identity() {
            "identity leaf map"
        } else {
            "mixed-radix leaf map"
        },
    );
    println!(
        "cost: {} cables, {} wires, bisection {} → volume proxy {:.0}",
        cost.cables, cost.wires, cost.bisection, cost.volume_proxy
    );
}

fn cmd_schedule(opts: &HashMap<String, String>) {
    let m = machine_from(opts);
    let ft = m.tree().clone();
    let mut rng = rng_from(opts);
    let msgs = m.map(&workload_from(opts, &m, &mut rng));
    m.announce();
    let lambda = load_factor(&ft, &msgs);
    let scheduler = opts.get("scheduler").map(String::as_str).unwrap_or("thm1");
    let (schedule, label) = match scheduler {
        "thm1" => (schedule_theorem1(&ft, &msgs).0, "Theorem 1"),
        "greedy" => (schedule_greedy(&ft, &msgs), "greedy first-fit"),
        "bigcap" => match schedule_bigcap(&ft, &msgs) {
            Ok((s, _)) => (s, "Corollary 2"),
            Err(e) => {
                eprintln!("Corollary 2 not applicable: {e}");
                exit(1);
            }
        },
        "compressed" => (
            fat_tree::sched::compress_schedule(&ft, schedule_theorem1(&ft, &msgs).0),
            "Theorem 1 + compression",
        ),
        other => {
            eprintln!("unknown scheduler: {other}");
            exit(2);
        }
    };
    schedule
        .validate(&ft, &msgs)
        .expect("schedule invalid — bug");
    println!(
        "{label}: {} messages, λ(M) = {lambda:.2}, lower bound {} ⇒ {} delivery cycles",
        msgs.len(),
        fat_tree::core::cycle_lower_bound(&ft, &msgs),
        schedule.num_cycles()
    );
}

fn cmd_online(opts: &HashMap<String, String>) {
    let m = machine_from(opts);
    let ft = m.tree().clone();
    let mut rng = rng_from(opts);
    let msgs = m.map(&workload_from(opts, &m, &mut rng));
    m.announce();
    let lambda = load_factor(&ft, &msgs);
    let mut rec = MetricsRecorder::new();
    let res =
        OnlineArena::new(&ft).route_with(&ft, &msgs, &mut rng, OnlineConfig::default(), &mut rec);
    println!(
        "on-line: {} messages, λ = {lambda:.2} → {} cycles (shape λ+lg n·lglg n = {:.1})",
        msgs.len(),
        res.cycles,
        online_bound_shape(&ft, lambda)
    );
    match rec.hottest_level() {
        Some(l) => println!(
            "contention: {} resends, hottest at level {l} ({} blocked); blocked root→leaf: {}",
            rec.total_blocked(),
            rec.blocked[l as usize],
            rec.blocked[1..]
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join("/")
        ),
        None => println!("contention: no message was ever blocked"),
    }
}

fn sim_config_from(opts: &HashMap<String, String>) -> SimConfig {
    let switch = match opts.get("switch").map(String::as_str).unwrap_or("ideal") {
        "ideal" => SwitchKind::Ideal,
        "partial" => SwitchKind::Partial,
        other => {
            eprintln!("unknown switch: {other}");
            exit(2);
        }
    };
    let arbitration = match opts.get("arb").map(String::as_str).unwrap_or("slot") {
        "slot" => Arbitration::SlotOrder,
        "random" => Arbitration::Random(get_u32(opts, "seed", 1985) as u64),
        other => {
            eprintln!("unknown arbitration: {other}");
            exit(2);
        }
    };
    SimConfig {
        payload_bits: get_u32(opts, "payload", 64),
        switch,
        arbitration,
        ..Default::default()
    }
}

/// FNV-1a over the delivery order — one u64 that pins the exact
/// per-message outcome, so smoke tests can assert determinism without
/// embedding the full order in the output.
fn order_fingerprint(order: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &i in order {
        for b in (i as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn cmd_simulate(opts: &HashMap<String, String>) {
    let m = machine_from(opts);
    let ft = m.tree().clone();
    let cfg = sim_config_from(opts);
    let spec = opts
        .get("workload")
        .cloned()
        .unwrap_or_else(|| "perm".into());
    // Streamed specs never build a message vector: the generator (lazily
    // mapped onto the padded tree) feeds the arena's two-pass
    // counting-sort ingest directly.
    let (run, n_msgs, streamed) = match stream_from(opts, &m) {
        Some(stream) => {
            let len = stream.len();
            let mapped = m.emb.stream(stream.as_ref());
            (run_stream_to_completion(&ft, &mapped, &cfg), len, true)
        }
        None => {
            let mut rng = rng_from(opts);
            let msgs = m.map(&workload_from(opts, &m, &mut rng));
            let len = msgs.len();
            (run_to_completion(&ft, &msgs, &cfg), len, false)
        }
    };
    if opts.get("format").map(String::as_str) == Some("json") {
        let per_cycle = run
            .delivered_per_cycle
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let topo = m.json_field();
        println!(
            "{{\"schema\":\"ftsim-simulate/v1\",{topo}\"workload\":\"{spec}\",\"n\":{},\"w\":{},\
             \"messages\":{n_msgs},\"streamed\":{streamed},\"cycles\":{},\"total_ticks\":{},\
             \"delivered_per_cycle\":[{per_cycle}],\"order_fnv\":\"{:016x}\"}}",
            ft.n(),
            ft.root_capacity(),
            run.cycles,
            run.total_ticks,
            order_fingerprint(&run.delivery_order),
        );
        return;
    }
    m.announce();
    println!(
        "bit-serial machine: {} messages in {} delivery cycles, {} total ticks",
        n_msgs, run.cycles, run.total_ticks
    );
    println!("per-cycle deliveries: {:?}", run.delivered_per_cycle);
}

/// Spin up an in-process serve instance, drive it with a short closed-loop
/// bench over loopback, and return its summary counters so the aggregated
/// report covers the live streaming engine too. `None` when the leaf count
/// can't be served (not a power of two) or loopback is unavailable.
fn serve_probe(n: u32, w: u64) -> Option<(fat_tree::serve::ServerStats, u64, u64)> {
    use fat_tree::serve::{bench, spawn, BenchConfig, BenchMode, Engine, ServerConfig};
    if !n.is_power_of_two() || n < 2 {
        return None;
    }
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        n,
        w,
        slots: 4,
        window_us: 200,
        inflight: 64,
        idle_ms: 5_000,
        max_requests: 0,
        metrics: true,
        metrics_addr: None,
    })
    .ok()?;
    let r = bench(&BenchConfig {
        addr: server.addr().to_string(),
        n,
        w,
        clients: 2,
        requests: 32,
        messages: 16,
        seed: 1985,
        engine: Engine::Schedule,
        mode: BenchMode::Closed,
        verify: false,
    })
    .ok();
    let stats = server.stop();
    let r = r?;
    Some((stats, r.p50_us, r.p99_us))
}

/// Every engine, one workload, one machine-readable story: per-level λ
/// breakdown from the Theorem 1 sweep, on-line wire contention, bit-serial
/// channel load histograms, cascade matching statistics, and a live serve
/// probe.
fn cmd_report(opts: &HashMap<String, String>) {
    let m = machine_from(opts);
    let ft = m.tree().clone();
    let mut rng = rng_from(opts);
    let spec = opts
        .get("workload")
        .cloned()
        .unwrap_or_else(|| "perm".into());
    let msgs = m.map(&workload_from(opts, &m, &mut rng));
    let as_json = opts.get("format").map(String::as_str) == Some("json");
    let lambda = load_factor(&ft, &msgs);

    // Off-line: the λ(M) sweep and the splitter's bucket behaviour.
    let mut sched_rec = MetricsRecorder::new();
    let (schedule, _) = SchedArena::new(&ft).schedule_with(&ft, &msgs, 1, &mut sched_rec);

    // On-line: per-level claimed/blocked/wasted contention.
    let mut online_rec = MetricsRecorder::new();
    let online_res = OnlineArena::new(&ft).route_with(
        &ft,
        &msgs,
        &mut rng,
        OnlineConfig::default(),
        &mut online_rec,
    );

    // Bit-serial machine: channel load vs. capacity per level per cycle.
    let mut sim_rec = MetricsRecorder::new();
    let run = run_to_completion_with(&ft, &msgs, &SimConfig::default(), &mut sim_rec);

    // Sharded coordinator: per-cycle barrier-wait / merge / top-arbitration
    // counters showing how much communication overlaps compute.
    let mut shard_rec = MetricsRecorder::new();
    let shards = get_u32(opts, "shards", 4).min(1 << ft.height());
    let shard_ok = run_sharded_with(
        &ft,
        &msgs,
        &ShardConfig::new(shards, SimConfig::default()),
        &mut shard_rec,
    )
    .is_ok();

    // Concentrator hardware at the root width: matching sizes, BFS rounds,
    // and augmenting paths per cascade stage over random guaranteed loads.
    let mut conc_rec = MetricsRecorder::new();
    let r = (ft.root_capacity() as usize * 3).max(12);
    let cascade = Cascade::new(r, (r / 3).max(4), &mut rng);
    let k = cascade.guaranteed().min(r);
    let mut matching = MatchingArena::new();
    for _ in 0..8 {
        let active = rng.sample_indices(r, k);
        let _ = cascade.route_traced(&mut matching, &active, &mut conc_rec);
    }

    // Streaming service: a short loopback serve pass so the live engine's
    // λ-feedback, batch occupancy, and reject counters appear alongside the
    // batch engines.
    let probe = serve_probe(ft.n(), ft.root_capacity());

    if as_json {
        let serve_json = match &probe {
            Some((s, p50, p99)) => format!(
                "{{\"served\":{},\"busy_rejected\":{},\"reaped\":{},\"batches\":{},\
                 \"batch_max\":{},\"batch_mean_x1000\":{},\"lambda_max\":{:.6},\
                 \"client_p50_us\":{p50},\"client_p99_us\":{p99}}}",
                s.served,
                s.busy,
                s.reaped,
                s.batches,
                s.batch_max,
                s.batch_mean_x1000,
                s.lambda_max
            ),
            None => "null".into(),
        };
        let topo = m.json_field();
        println!(
            "{{\"schema\":\"ftsim-report/v2\",{topo}\"workload\":\"{spec}\",\"n\":{},\"w\":{},\"messages\":{},\"lambda\":{lambda:.6},\"offline_cycles\":{},\"online_cycles\":{},\"sim_cycles\":{},\"cascade\":{{\"inputs\":{r},\"outputs\":{},\"guaranteed\":{k}}},\"schedule\":{},\"online\":{},\"simulate\":{},\"concentrator\":{},\"shard\":{},\"serve\":{serve_json}}}",
            ft.n(),
            ft.root_capacity(),
            msgs.len(),
            schedule.num_cycles(),
            online_res.cycles,
            run.cycles,
            cascade.outputs(),
            sched_rec.to_json(),
            online_rec.to_json(),
            sim_rec.to_json(),
            conc_rec.to_json(),
            if shard_ok {
                shard_rec.to_json()
            } else {
                "null".into()
            },
        );
        return;
    }

    m.announce();
    println!(
        "report: workload {spec}, n = {}, w = {}, {} messages",
        ft.n(),
        ft.root_capacity(),
        msgs.len()
    );
    println!(
        "λ(M) = {lambda:.2} (max over levels {:.2}); Theorem 1 schedules {} cycles, on-line {}, bit-serial {}",
        sched_rec.lambda_max(),
        schedule.num_cycles(),
        online_res.cycles,
        run.cycles
    );
    println!("λ contribution by level (root = 1):");
    print!("{}", sched_rec.render_lambda());
    println!(
        "splitter: {} buckets split, sizes(log2) {}",
        sched_rec.splits.iter().sum::<u64>(),
        sched_rec.split_sizes.render()
    );
    match online_rec.hottest_level() {
        Some(l) => println!(
            "on-line contention: {} resends, hottest level {l} ({} blocked)",
            online_rec.total_blocked(),
            online_rec.blocked[l as usize]
        ),
        None => println!("on-line contention: no message was ever blocked"),
    }
    print!("{}", online_rec.render_contention());
    println!("channel load vs. capacity (eighths of cap, per level):");
    print!("{}", sim_rec.render_load());
    println!(
        "concentrator cascade {r} → {} wires (guaranteed load {k}), 8 random trials:",
        cascade.outputs()
    );
    print!("{}", conc_rec.render_stages());
    if shard_ok {
        println!("sharded coordinator overlap ({shards} shards, inproc):");
        print!("{}", shard_rec.render_shard_cycles());
    }
    match &probe {
        Some((s, p50, p99)) => println!(
            "serve probe: {} requests in {} batches (max {}, mean {:.1}), λ_max {:.2}, {} busy, client p50/p99 {p50}/{p99} µs",
            s.served,
            s.batches,
            s.batch_max,
            s.batch_mean_x1000 as f64 / 1000.0,
            s.lambda_max,
            s.busy,
        ),
        None => println!("serve probe: skipped (leaf count not servable)"),
    }
}

/// Capture packed trace events from one engine and export them.
fn cmd_trace(opts: &HashMap<String, String>) {
    let m = machine_from(opts);
    let ft = m.tree().clone();
    let mut rng = rng_from(opts);
    let msgs = m.map(&workload_from(opts, &m, &mut rng));
    let events = get_u32(opts, "events", 4096) as usize;
    let engine = opts.get("engine").map(String::as_str).unwrap_or("online");
    let format = opts.get("format").map(String::as_str).unwrap_or("jsonl");
    let verify = opts.get("verify").is_some_and(|v| v != "0" && v != "false");

    let mut rec = MetricsRecorder::with_trace(events);
    match engine {
        "online" => {
            OnlineArena::new(&ft).route_with(
                &ft,
                &msgs,
                &mut rng,
                OnlineConfig::default(),
                &mut rec,
            );
        }
        "simulate" => {
            run_to_completion_with(&ft, &msgs, &SimConfig::default(), &mut rec);
        }
        "schedule" => {
            SchedArena::new(&ft).schedule_with(&ft, &msgs, 1, &mut rec);
        }
        other => {
            eprintln!("unknown engine: {other} (expected online|simulate|schedule)");
            exit(2);
        }
    }

    // Verification always runs on the JSONL round-trip, whatever format is
    // printed: a mismatch must exit non-zero in every branch.
    if verify {
        let out = rec.ring.export_jsonl();
        let parsed = parse_jsonl(&out).unwrap_or_else(|e| {
            eprintln!("trace verify failed: {e}");
            exit(1);
        });
        let original: Vec<_> = rec.ring.iter().collect();
        if parsed != original {
            eprintln!("trace verify failed: round-trip mismatch");
            exit(1);
        }
        eprintln!(
            "trace verified: {} events round-tripped ({} dropped by the ring)",
            parsed.len(),
            rec.ring.dropped()
        );
    }

    match format {
        "jsonl" => print!("{}", rec.ring.export_jsonl()),
        "csv" => print!("{}", rec.ring.export_csv()),
        other => {
            eprintln!("unknown format: {other} (expected jsonl|csv)");
            exit(2);
        }
    }
}

/// Live exposition adapter for `ftsim shard --metrics-addr`: renders the
/// coordinator's per-link counters as the `shard_links` section of a
/// `ftsim-metrics/v1` document plus a Prometheus text page. The serve-side
/// sections don't apply to a one-shot shard run and are omitted.
struct ShardScrape {
    live: std::sync::Arc<fat_tree::shard::LinkCounters>,
    done: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl fat_tree::serve::MetricsSource for ShardScrape {
    fn stopped(&self) -> bool {
        self.done.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn render(&self, path: &str) -> Option<(&'static str, String)> {
        let read = |col: &[std::sync::atomic::AtomicU64]| -> Vec<u64> {
            col.iter()
                .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
                .collect()
        };
        let sent = read(&self.live.frames_sent);
        let recv = read(&self.live.frames_received);
        let retr = read(&self.live.retries);
        let rej = read(&self.live.checksum_rejects);
        match path {
            "/metrics.json" => {
                let links: Vec<String> = (0..sent.len())
                    .map(|s| {
                        format!(
                            "{{\"shard\":{s},\"frames_sent\":{},\"frames_received\":{},\
                             \"retries\":{},\"checksum_rejects\":{}}}",
                            sent[s], recv[s], retr[s], rej[s]
                        )
                    })
                    .collect();
                Some((
                    "application/json",
                    format!(
                        "{{\"schema\":\"ftsim-metrics/v1\",\"shard_links\":[{}]}}\n",
                        links.join(",")
                    ),
                ))
            }
            "/metrics" => {
                let mut out = String::new();
                for (name, col) in [
                    ("frames_sent", &sent),
                    ("frames_received", &recv),
                    ("retries", &retr),
                    ("checksum_rejects", &rej),
                ] {
                    out.push_str(&format!("# TYPE ftsim_shard_link_{name}_total counter\n"));
                    for (s, v) in col.iter().enumerate() {
                        out.push_str(&format!(
                            "ftsim_shard_link_{name}_total{{shard=\"{s}\"}} {v}\n"
                        ));
                    }
                }
                Some(("text/plain; version=0.0.4", out))
            }
            _ => None,
        }
    }
}

/// Run the workload through the distributed sharded engine and check the
/// result against the single-arena engine.
fn cmd_shard(opts: &HashMap<String, String>) {
    let m = machine_from(opts);
    let ft = m.tree().clone();
    let mut rng = rng_from(opts);
    let spec = opts
        .get("workload")
        .cloned()
        .unwrap_or_else(|| "perm".into());
    let msgs = m.map(&workload_from(opts, &m, &mut rng));
    let sim = sim_config_from(opts);
    let shards = get_u32(opts, "shards", 4);
    let as_json = opts.get("format").map(String::as_str) == Some("json");

    let mut cfg = ShardConfig::new(shards, sim);
    cfg.transport = match opts
        .get("transport")
        .map(String::as_str)
        .unwrap_or("inproc")
    {
        "inproc" => TransportKind::InProcess,
        "shm" => TransportKind::Shm,
        "pipe" => {
            let exe = std::env::current_exe().unwrap_or_else(|e| {
                eprintln!("cannot locate own executable for pipe workers: {e}");
                exit(1);
            });
            TransportKind::Pipe {
                cmd: vec![exe.to_string_lossy().into_owned(), "shard-worker".into()],
            }
        }
        other => {
            eprintln!("unknown transport: {other} (expected inproc|shm|pipe)");
            exit(2);
        }
    };
    cfg.faults = FaultPlan {
        drop: get_f64(opts, "drop", 0.0),
        duplicate: get_f64(opts, "dup", 0.0),
        corrupt: get_f64(opts, "corrupt", 0.0),
        delay_ms: get_u32(opts, "delay-ms", 0),
        seed: get_u32(opts, "fault-seed", 7) as u64,
    };
    cfg.timeout = std::time::Duration::from_millis(get_u32(opts, "timeout-ms", 5000) as u64);
    cfg.retries = get_u32(opts, "retries", 4);

    // Optional live exposition: bind the scrape listener before the run so
    // per-link counters are observable while the coordinator works, and
    // announce it on stdout so a driver can scrape mid-run.
    let mut scrape = None;
    if let Some(maddr) = opts.get("metrics-addr") {
        use std::sync::{atomic::AtomicBool, Arc};
        let live = Arc::new(fat_tree::shard::LinkCounters::new(shards as usize));
        cfg.live = Some(Arc::clone(&live));
        let done = Arc::new(AtomicBool::new(false));
        let src = Arc::new(ShardScrape {
            live,
            done: Arc::clone(&done),
        });
        match fat_tree::serve::spawn_metrics_listener(maddr, src) {
            Ok((bound, handle)) => {
                println!(
                    "{{\"schema\":\"ftsim-shard/v1\",\"event\":\"metrics-listening\",\
                     \"metrics_addr\":\"{bound}\"}}"
                );
                use std::io::Write;
                let _ = std::io::stdout().flush();
                scrape = Some((done, handle));
            }
            Err(e) => {
                eprintln!("shard: cannot bind metrics listener {maddr}: {e}");
                exit(1);
            }
        }
    }

    let report = match run_sharded(&ft, &msgs, &cfg) {
        Ok(r) => r,
        Err(e) => {
            if as_json {
                println!(
                    "{{\"schema\":\"ftsim-shard/v1\",\"error\":{{\"kind\":\"{}\",\"detail\":\"{}\"}}}}",
                    e.kind(),
                    e.to_string().replace('"', "'")
                );
            } else {
                eprintln!("sharded run failed: {e}");
            }
            exit(1);
        }
    };
    if let Some((done, handle)) = scrape {
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = handle.join();
    }
    let single = run_to_completion(&ft, &msgs, &sim);
    let matches = report.run.delivered_per_cycle == single.delivered_per_cycle
        && report.run.delivery_order == single.delivery_order
        && report.run.total_ticks == single.total_ticks;
    let st = &report.stats;

    if as_json {
        let per_cycle: Vec<String> = report
            .run
            .delivered_per_cycle
            .iter()
            .map(usize::to_string)
            .collect();
        let ns_list = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        let topo = m.json_field();
        println!(
            "{{\"schema\":\"ftsim-shard/v1\",{topo}\"workload\":\"{spec}\",\"n\":{},\"w\":{},\"messages\":{},\"shards\":{},\"transport\":\"{}\",\"cycles\":{},\"total_ticks\":{},\"delivered_per_cycle\":[{}],\"matches_single_arena\":{matches},\"stats\":{{\"frames_sent\":{},\"frames_received\":{},\"bytes_sent\":{},\"bytes_received\":{},\"retries\":{},\"checksum_rejects\":{},\"duplicates\":{},\"barrier_wait_ns\":{},\"top_ns\":{},\"merge_ns\":{},\"shard_up_ns\":[{}],\"shard_down_ns\":[{}],\"link_frames_sent\":[{}],\"link_frames_received\":[{}],\"link_retries\":[{}],\"link_checksum_rejects\":[{}]}}}}",
            ft.n(),
            ft.root_capacity(),
            msgs.len(),
            st.shards,
            st.transport,
            report.run.cycles,
            report.run.total_ticks,
            per_cycle.join(","),
            st.frames_sent,
            st.frames_received,
            st.words_sent * 8,
            st.words_received * 8,
            st.retries,
            st.checksum_rejects,
            st.duplicates,
            st.barrier_wait_ns,
            st.top_ns,
            st.merge_ns,
            ns_list(&st.shard_up_ns),
            ns_list(&st.shard_down_ns),
            ns_list(&st.link_frames_sent),
            ns_list(&st.link_frames_received),
            ns_list(&st.link_retries),
            ns_list(&st.link_checksum_rejects),
        );
    } else {
        m.announce();
        println!(
            "sharded engine: {} messages over {} shards ({}), {} delivery cycles, {} total ticks",
            msgs.len(),
            st.shards,
            st.transport,
            report.run.cycles,
            report.run.total_ticks
        );
        println!(
            "barrier: {} frames / {} bytes exchanged, {} retries, {} checksum rejects, {} duplicates, {:.2} ms waiting",
            st.frames_sent + st.frames_received,
            (st.words_sent + st.words_received) * 8,
            st.retries,
            st.checksum_rejects,
            st.duplicates,
            st.barrier_wait_ns as f64 / 1e6
        );
        println!(
            "overlap: {:.2} ms merging claims, {:.2} ms top arbitration (merge runs while shards compute)",
            st.merge_ns as f64 / 1e6,
            st.top_ns as f64 / 1e6
        );
        println!(
            "single-arena cross-check: {}",
            if matches {
                "byte-identical"
            } else {
                "MISMATCH"
            }
        );
    }
    if !matches {
        eprintln!("sharded run diverged from the single-arena engine — bug");
        exit(1);
    }
}

/// Run the streaming scheduler service until stdin EOF (or
/// `--max-requests`). One JSON line announces the resolved listen address,
/// one summarizes the run at shutdown — both `ftsim-serve/v1`.
fn cmd_serve(opts: &HashMap<String, String>) {
    use fat_tree::serve::{spawn, ServerConfig};
    use std::io::{Read, Write};

    let (n, w) = universal_nw_from(opts, "serve");
    let cfg = ServerConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:0".into()),
        n,
        w,
        slots: get_u32(opts, "slots", 8).max(1),
        window_us: get_u32(opts, "window-us", 200) as u64,
        inflight: get_u32(opts, "inflight", 64).max(1) as usize,
        idle_ms: get_u32(opts, "idle-ms", 5000) as u64,
        max_requests: get_u32(opts, "max-requests", 0) as u64,
        metrics: get_u32(opts, "metrics", 1) != 0,
        metrics_addr: opts.get("metrics-addr").cloned(),
    };
    if !cfg.n.is_power_of_two() || cfg.n < 2 {
        eprintln!("--n must be a power of two ≥ 2, got {}", cfg.n);
        exit(2);
    }
    if !cfg.slots.is_power_of_two() {
        eprintln!("--slots must be a power of two, got {}", cfg.slots);
        exit(2);
    }
    let server = spawn(cfg.clone()).unwrap_or_else(|e| {
        eprintln!("serve: cannot bind {}: {e}", cfg.addr);
        exit(1);
    });
    println!(
        "{{\"schema\":\"ftsim-serve/v1\",\"event\":\"listening\",\"addr\":\"{}\",\"n\":{},\"w\":{},\
         \"slots\":{},\"window_us\":{},\"inflight\":{},\"idle_ms\":{},\"max_requests\":{},\
         \"metrics_addr\":{}}}",
        server.addr(),
        cfg.n,
        cfg.w,
        cfg.slots,
        cfg.window_us,
        cfg.inflight,
        cfg.idle_ms,
        cfg.max_requests,
        match server.metrics_addr() {
            Some(a) => format!("\"{a}\""),
            None => "null".into(),
        },
    );
    let _ = std::io::stdout().flush();
    // stdin EOF is the shutdown signal: a driver holds the pipe open while
    // clients run, then closes it (or the user hits ^D).
    let stopper = server.stopper();
    std::thread::spawn(move || {
        let mut sink = [0u8; 256];
        let mut stdin = std::io::stdin().lock();
        while matches!(stdin.read(&mut sink), Ok(k) if k > 0) {}
        stopper.stop();
    });
    server.wait();
    let stats = server.stop();
    println!(
        "{{\"schema\":\"ftsim-serve/v1\",\"event\":\"summary\",\"served\":{},\"busy\":{},\
         \"reaped\":{},\"batches\":{},\"batch_max\":{},\"batch_mean_x1000\":{},\
         \"lambda_max\":{:.6},\"conns\":{}}}",
        stats.served,
        stats.busy,
        stats.reaped,
        stats.batches,
        stats.batch_max,
        stats.batch_mean_x1000,
        stats.lambda_max,
        stats.conns,
    );
}

/// Drive a running `ftsim serve` with N concurrent clients and print a
/// bench summary line.
fn cmd_bench_client(opts: &HashMap<String, String>) {
    use fat_tree::serve::{bench, BenchConfig, BenchMode, Engine};

    let Some(addr) = opts.get("addr").cloned() else {
        eprintln!("bench-client: --addr HOST:PORT is required");
        exit(2);
    };
    let (n, w) = universal_nw_from(opts, "bench-client");
    let engine = match opts.get("engine").map(String::as_str).unwrap_or("schedule") {
        "schedule" => Engine::Schedule,
        "online" => Engine::Online,
        other => {
            eprintln!("unknown engine: {other} (expected schedule|online)");
            exit(2);
        }
    };
    let mode_name = opts.get("mode").map(String::as_str).unwrap_or("closed");
    let mode = match mode_name {
        "closed" => BenchMode::Closed,
        "open" => BenchMode::Open {
            depth: get_u32(opts, "depth", 8).max(1) as usize,
        },
        "burst" => BenchMode::Burst {
            size: get_u32(opts, "depth", 32).max(1) as usize,
        },
        "dead" => BenchMode::Dead {
            hold_ms: get_u32(opts, "hold-ms", 500) as u64,
        },
        other => {
            eprintln!("unknown mode: {other} (expected closed|open|burst|dead)");
            exit(2);
        }
    };
    let cfg = BenchConfig {
        addr,
        n,
        w,
        clients: get_u32(opts, "clients", 4).max(1) as usize,
        requests: get_u32(opts, "requests", 200) as u64,
        messages: get_u32(opts, "messages", 64) as usize,
        seed: get_u32(opts, "seed", 1985) as u64,
        engine,
        mode,
        verify: opts.get("verify").is_some_and(|v| v != "0" && v != "false"),
    };
    let r = bench(&cfg).unwrap_or_else(|e| {
        eprintln!("bench-client: {e}");
        exit(1);
    });
    // `busy` stays for older consumers; `busy_rejects` is the canonical
    // name (it matches the serve-side counter), `reaped` counts responses
    // burst mode gave up on when the server closed the connection.
    println!(
        "{{\"schema\":\"ftsim-serve/v1\",\"event\":\"bench\",\"mode\":\"{mode_name}\",\
         \"engine\":\"{}\",\"clients\":{},\"sent\":{},\"ok\":{},\"busy\":{},\
         \"busy_rejects\":{},\"reaped\":{},\"errors\":{},\
         \"verified\":{},\"mismatches\":{},\"elapsed_ns\":{},\"requests_per_sec\":{:.1},\
         \"p50_us\":{},\"p99_us\":{},\"resp_fnv\":\"{:016x}\"}}",
        if engine == Engine::Schedule {
            "schedule"
        } else {
            "online"
        },
        cfg.clients,
        r.sent,
        r.ok,
        r.busy,
        r.busy,
        r.reaped,
        r.errors,
        r.verified,
        r.mismatches,
        r.elapsed_ns,
        r.requests_per_sec(),
        r.p50_us,
        r.p99_us,
        r.resp_fnv,
    );
    if r.mismatches > 0 || r.errors > 0 {
        eprintln!(
            "bench-client: {} mismatches, {} errors — failing",
            r.mismatches, r.errors
        );
        exit(1);
    }
}

/// Fetch one page from a `--metrics-addr` listener and print it verbatim.
/// Works against both `ftsim serve` and `ftsim shard` exposition
/// endpoints; exits non-zero on connection failure or a non-200 status.
fn cmd_metrics_scrape(opts: &HashMap<String, String>) {
    use std::net::ToSocketAddrs;

    reject_topology(opts, "metrics-scrape", "it scrapes a running listener");
    let Some(addr) = opts.get("addr") else {
        eprintln!("metrics-scrape: --addr HOST:PORT is required");
        exit(2);
    };
    let path = opts
        .get("path")
        .cloned()
        .unwrap_or_else(|| "/metrics.json".into());
    let sock = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| {
            eprintln!("metrics-scrape: cannot resolve {addr}");
            exit(2);
        });
    match fat_tree::serve::http_get(sock, &path) {
        Ok(body) => print!("{body}"),
        Err(e) => {
            eprintln!("metrics-scrape: GET {path} from {addr}: {e}");
            exit(1);
        }
    }
}

fn cmd_universality(opts: &HashMap<String, String>) {
    reject_topology(
        opts,
        "universality",
        "the guest is a fixed-connection network (--net); the host tree is derived from it",
    );
    let net = network_from(opts);
    let mut rng = rng_from(opts);
    let msgs = workloads::random_permutation(net.n() as u32, &mut rng);
    let rep = fat_tree::universal::simulate_on_fat_tree(net.as_ref(), &msgs, 1.0, &mut rng);
    println!(
        "{}: n = {}, volume {:.0} → fat-tree w = {}",
        rep.network, rep.n, rep.volume, rep.root_capacity
    );
    println!(
        "t_R = {}, λ = {:.2}, d = {} ⇒ slowdown {:.2} (lg³n bound {:.1})",
        rep.t_network, rep.lambda, rep.cycles, rep.slowdown, rep.slowdown_bound
    );
}

fn cmd_emulate(opts: &HashMap<String, String>) {
    reject_topology(
        opts,
        "emulate",
        "the guest is a fixed-connection network (--net); the host tree is derived from it",
    );
    let net = network_from(opts);
    let em = Emulation::build(net.as_ref(), 1.0);
    println!(
        "{} (n = {}, degree {}) hosted on a degree-{} universal fat-tree:",
        net.name(),
        net.n(),
        net.degree(),
        em.degree
    );
    println!(
        "minimal root capacity w = {}, λ(edge set) = {:.2}, {} ticks per guest step",
        em.root_capacity,
        em.edge_load_factor,
        em.emulation_time(1)
    );
}

fn cmd_layout(opts: &HashMap<String, String>) {
    let m = machine_from(opts);
    let ft = m.tree().clone();
    m.announce();
    let layout = FatTreeLayout::build(&ft);
    let d = layout.level_dims[0];
    println!(
        "constructive 3-D layout: {:.1} × {:.1} × {:.1} = volume {:.0} (aspect {:.1})",
        d[0],
        d[1],
        d[2],
        layout.volume,
        layout.aspect_ratio()
    );
    println!(
        "Theorem 4 law (w·lg(n/w))^(3/2) = {:.0}",
        fat_tree::layout::cost::theorem4_volume_law(ft.n() as u64, ft.root_capacity())
    );
}
