//! Hopcroft–Karp maximum bipartite matching.
//!
//! The paper sets up concentrator paths "using network flow techniques or by
//! performing a sequence of matchings on each level of the graph"; this is
//! that machinery. Hopcroft–Karp runs in O(E·√V), comfortably polynomial as
//! the paper requires.

use crate::bipartite::BipartiteGraph;
use ft_telemetry::Recorder;

const NIL: u32 = u32::MAX;

/// Reusable buffers for Hopcroft–Karp: the pair, distance and BFS-queue
/// arrays survive across [`MatchingArena::max_matching`] calls, so repeated
/// matchings — a cascade routing stage by stage, a simulator concentrating
/// every cycle, a verifier running thousands of trials — stop reallocating.
///
/// The algorithm (and hence the matching produced) is identical to the
/// one-shot [`max_matching`] wrapper; `tests/matching_brute.rs` pins
/// arena-reuse runs to fresh-allocation runs.
#[derive(Clone, Debug, Default)]
pub struct MatchingArena {
    /// `pair_u[j]` = matched output of `active[j]` (`NIL` = unmatched).
    pair_u: Vec<u32>,
    /// `pair_v[o]` = matched active index of output `o`.
    pair_v: Vec<u32>,
    dist: Vec<u32>,
    /// FIFO realized as a grow-only vec with a head cursor.
    queue: Vec<u32>,
    /// BFS phases run by the last `max_matching` call.
    last_rounds: u32,
    /// Augmenting paths applied by the last `max_matching` call.
    last_paths: u32,
}

impl MatchingArena {
    /// An empty arena; buffers grow to the largest matching ever run.
    pub fn new() -> Self {
        MatchingArena::default()
    }

    /// Maximum matching between the *active* inputs of `g` and its outputs.
    /// Returns the matching size; read the assignment off
    /// [`MatchingArena::matched`] / [`MatchingArena::matches`].
    pub fn max_matching(&mut self, g: &BipartiteGraph, active: &[usize]) -> usize {
        let n = active.len();
        let s = g.outputs();
        self.pair_u.clear();
        self.pair_u.resize(n, NIL);
        self.pair_v.clear();
        self.pair_v.resize(s, NIL);
        self.dist.clear();
        self.dist.resize(n, u32::MAX);
        self.last_rounds = 0;
        self.last_paths = 0;

        loop {
            // BFS: layers from free inputs.
            self.queue.clear();
            let mut head = 0usize;
            let mut found_augmenting = false;
            for j in 0..n {
                if self.pair_u[j] == NIL {
                    self.dist[j] = 0;
                    self.queue.push(j as u32);
                } else {
                    self.dist[j] = u32::MAX;
                }
            }
            while head < self.queue.len() {
                let j = self.queue[head] as usize;
                head += 1;
                for &o in g.neighbors(active[j]) {
                    let pv = self.pair_v[o as usize];
                    if pv == NIL {
                        found_augmenting = true;
                    } else if self.dist[pv as usize] == u32::MAX {
                        self.dist[pv as usize] = self.dist[j] + 1;
                        self.queue.push(pv);
                    }
                }
            }
            if !found_augmenting {
                break;
            }
            self.last_rounds += 1;
            // DFS along layered graph.
            for j in 0..n {
                if self.pair_u[j] == NIL
                    && dfs(
                        g,
                        active,
                        j,
                        &mut self.pair_u,
                        &mut self.pair_v,
                        &mut self.dist,
                    )
                {
                    self.last_paths += 1;
                }
            }
        }

        self.pair_u.iter().filter(|&&o| o != NIL).count()
    }

    /// [`MatchingArena::max_matching`] that additionally reports the run to
    /// a [`Recorder`] as cascade stage `stage` (size, BFS rounds, augmenting
    /// paths). With a `NoopRecorder` this compiles to `max_matching`.
    pub fn max_matching_with<R: Recorder>(
        &mut self,
        g: &BipartiteGraph,
        active: &[usize],
        stage: u32,
        rec: &mut R,
    ) -> usize {
        let size = self.max_matching(g, active);
        if R::ENABLED {
            rec.matching_stage(
                stage,
                active.len() as u32,
                size as u32,
                self.last_rounds,
                self.last_paths,
            );
        }
        size
    }

    /// BFS phases (Hopcroft–Karp rounds) run by the last matching.
    #[inline]
    pub fn last_rounds(&self) -> u32 {
        self.last_rounds
    }

    /// Augmenting paths applied by the last matching (equals the matching
    /// size when the arena started from an empty matching).
    #[inline]
    pub fn last_paths(&self) -> u32 {
        self.last_paths
    }

    /// The output matched to `active[j]` by the last `max_matching` run.
    #[inline]
    pub fn matched(&self, j: usize) -> Option<usize> {
        let o = self.pair_u[j];
        (o != NIL).then_some(o as usize)
    }

    /// Per-active-input matched outputs of the last `max_matching` run.
    pub fn matches(&self) -> impl Iterator<Item = Option<usize>> + '_ {
        self.pair_u
            .iter()
            .map(|&o| (o != NIL).then_some(o as usize))
    }
}

/// Maximum matching between the *active* inputs of `g` and its outputs.
///
/// Returns `(size, match_of_active)` where `match_of_active[j]` is the
/// output matched to `active[j]` (or `None`). One-shot convenience over
/// [`MatchingArena`]; hot paths should hold an arena and reuse it.
pub fn max_matching(g: &BipartiteGraph, active: &[usize]) -> (usize, Vec<Option<usize>>) {
    let mut arena = MatchingArena::new();
    let size = arena.max_matching(g, active);
    (size, arena.matches().collect())
}

fn dfs(
    g: &BipartiteGraph,
    active: &[usize],
    j: usize,
    pair_u: &mut [u32],
    pair_v: &mut [u32],
    dist: &mut [u32],
) -> bool {
    for &o in g.neighbors(active[j]) {
        let pv = pair_v[o as usize];
        if pv == NIL
            || (dist[pv as usize] == dist[j] + 1
                && dfs(g, active, pv as usize, pair_u, pair_v, dist))
        {
            pair_u[j] = o;
            pair_v[o as usize] = j as u32;
            return true;
        }
    }
    dist[j] = u32::MAX;
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_identity() {
        let g = BipartiteGraph::from_adj(4, vec![vec![0], vec![1], vec![2], vec![3]]);
        let (size, m) = max_matching(&g, &[0, 1, 2, 3]);
        assert_eq!(size, 4);
        assert_eq!(m, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn augmenting_path_needed() {
        // 0: {0}, 1: {0,1} — greedy could block input 0; HK must find both.
        let g = BipartiteGraph::from_adj(2, vec![vec![0], vec![0, 1]]);
        let (size, m) = max_matching(&g, &[0, 1]);
        assert_eq!(size, 2);
        assert_eq!(m[0], Some(0));
        assert_eq!(m[1], Some(1));
    }

    #[test]
    fn deficient_graph_partial_matching() {
        // Three inputs all share one output.
        let g = BipartiteGraph::from_adj(1, vec![vec![0], vec![0], vec![0]]);
        let (size, m) = max_matching(&g, &[0, 1, 2]);
        assert_eq!(size, 1);
        assert_eq!(m.iter().filter(|x| x.is_some()).count(), 1);
    }

    #[test]
    fn matching_is_injective() {
        let g = BipartiteGraph::from_adj(
            5,
            vec![
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![3, 4],
                vec![4, 0],
                vec![0, 2],
            ],
        );
        let active: Vec<usize> = (0..6).collect();
        let (size, m) = max_matching(&g, &active);
        assert_eq!(size, 5); // 6 inputs, 5 outputs: at most 5
        let mut used = std::collections::HashSet::new();
        for o in m.into_iter().flatten() {
            assert!(used.insert(o), "output {o} matched twice");
        }
    }

    #[test]
    fn subset_of_active_inputs() {
        let g = BipartiteGraph::from_adj(3, vec![vec![0], vec![1], vec![2], vec![0, 1, 2]]);
        let (size, m) = max_matching(&g, &[1, 3]);
        assert_eq!(size, 2);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0], Some(1));
    }

    #[test]
    fn round_and_path_counters_report_through_recorder() {
        use ft_telemetry::MetricsRecorder;
        // 0: {0}, 1: {0,1} — HK needs an augmenting path, so ≥ 1 round and
        // exactly 2 successful paths (matching built from empty).
        let g = BipartiteGraph::from_adj(2, vec![vec![0], vec![0, 1]]);
        let mut arena = MatchingArena::new();
        let mut rec = MetricsRecorder::new();
        let size = arena.max_matching_with(&g, &[0, 1], 3, &mut rec);
        assert_eq!(size, 2);
        assert_eq!(arena.last_paths(), 2);
        assert!(arena.last_rounds() >= 1);
        assert_eq!(rec.stages.len(), 4, "stage table grows to stage index");
        let s = &rec.stages[3];
        assert_eq!((s.runs, s.active, s.matched), (1, 2, 2));
        assert_eq!(s.paths, 2);
        assert!(s.rounds >= 1);
        // A NoopRecorder run leaves the matching identical.
        let mut arena2 = MatchingArena::new();
        let size2 = arena2.max_matching(&g, &[0, 1]);
        assert_eq!(size, size2);
        let a: Vec<_> = arena.matches().collect();
        let b: Vec<_> = arena2.matches().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_active_set() {
        let g = BipartiteGraph::from_adj(2, vec![vec![0], vec![1]]);
        let (size, m) = max_matching(&g, &[]);
        assert_eq!(size, 0);
        assert!(m.is_empty());
    }
}
