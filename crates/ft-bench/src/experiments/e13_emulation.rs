//! E13 — §VI fixed-connection emulation: a degree-d universal fat-tree
//! hosts any degree-d network's full edge set as a one-cycle message set,
//! so each guest step costs one O(lg n) delivery cycle.

use crate::tables::{f, Table};
use ft_networks::{
    FixedConnectionNetwork, Hypercube, Mesh2D, Mesh3D, Ring, ShuffleExchange, TreeMachine,
};
use ft_sim::compile_cycle;
use ft_universal::Emulation;

/// Run E13.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E13 — fixed-connection emulation (§VI): minimal host root capacity per guest",
        &[
            "guest network",
            "n",
            "degree d",
            "guest volume",
            "host w (minimal)",
            "λ(edges)",
            "compiles?",
            "ticks/step",
        ],
    );
    let nets: Vec<Box<dyn FixedConnectionNetwork>> = vec![
        Box::new(Ring::new(64)),
        Box::new(TreeMachine::new(6)),
        Box::new(Mesh2D::new(8, 8)),
        Box::new(ShuffleExchange::new(6)),
        Box::new(Mesh3D::new(4)),
        Box::new(Hypercube::new(6)),
    ];
    for net in &nets {
        let em = Emulation::build(net.as_ref(), 1.0);
        // The edge set must compile to switch settings (ideal concentrators):
        // §II's "compiled" emulation of a fixed-connection network.
        let compiled = compile_cycle(&em.host, em.edge_set.as_slice());
        t.row(vec![
            net.name(),
            net.n().to_string(),
            net.degree().to_string(),
            f(net.volume()),
            em.root_capacity.to_string(),
            f(em.edge_load_factor),
            if compiled.is_ok() {
                "✓".into()
            } else {
                "✗".into()
            },
            em.emulation_time(1).to_string(),
        ]);
    }
    t.note("Host capacity ranks guests by communication demand — the degree floor");
    t.note("(d−1)·n^(2/3)+1 for leaf wires plus bisection pressure: ring < tree ≤ mesh2d");
    t.note("< shuffle-exchange < mesh3d < hypercube. Every edge set compiles to static");
    t.note("switch settings (§II's 'compiled' mode: no acknowledgment hardware needed),");
    t.note("and one guest step costs one Θ(lg n)-tick delivery cycle.");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e13_everything_compiles() {
        let t = super::run();
        for row in &t[0].rows {
            assert_eq!(row[6], "✓", "edge set failed to compile: {row:?}");
            let lam: f64 = row[5].parse().unwrap();
            assert!(lam <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn e13_capacity_ranks_by_bisection() {
        let t = super::run();
        let w: Vec<f64> = t[0].rows.iter().map(|r| r[4].parse().unwrap()).collect();
        // ring ≤ tree ≤ mesh2d ≤ shuffle-exchange ≤ mesh3d ≤ hypercube
        for i in 0..w.len() - 1 {
            assert!(
                w[i] <= w[i + 1] + 1e-9,
                "bisection order violated at row {i}: {w:?}"
            );
        }
    }
}
