//! `bench_check` — schema validation for `BENCH_engine.json`.
//!
//! `ft-perf` hand-rolls its JSON (the workspace builds offline, no serde),
//! so a formatting slip would ship a file downstream tooling cannot read.
//! This binary parses the file with the strict reader in [`ft_bench::json`]
//! and asserts the `ft-perf/v1` schema: required blocks present, rows carry
//! the documented fields with sane values. `scripts/check.sh` runs it on a
//! `--smoke --out` pass so malformed bench output fails CI.
//!
//! ```text
//! cargo run --release -p ft-bench --bin bench_check -- BENCH_engine.json
//! ```
//!
//! Exits non-zero with a description of the first violation found.

use ft_bench::json::{parse, Value};

fn fail(msg: &str) -> ! {
    eprintln!("bench_check: {msg}");
    std::process::exit(1);
}

/// `doc[key]` must be an array; return it.
fn req_arr<'a>(doc: &'a Value, key: &str) -> &'a [Value] {
    doc.get(key)
        .unwrap_or_else(|| fail(&format!("missing required block \"{key}\"")))
        .as_arr()
        .unwrap_or_else(|| fail(&format!("\"{key}\" is not an array")))
}

/// `row[key]` must be a finite number; return it.
fn req_num(row: &Value, key: &str, ctx: &str) -> f64 {
    let x = row
        .get(key)
        .and_then(Value::as_num)
        .unwrap_or_else(|| fail(&format!("{ctx}: missing numeric \"{key}\"")));
    if !x.is_finite() {
        fail(&format!("{ctx}: \"{key}\" is not finite"));
    }
    x
}

/// `row[key]` must be a non-empty string; return it.
fn req_str<'a>(row: &'a Value, key: &str, ctx: &str) -> &'a str {
    let s = row
        .get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| fail(&format!("{ctx}: missing string \"{key}\"")));
    if s.is_empty() {
        fail(&format!("{ctx}: \"{key}\" is empty"));
    }
    s
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));

    match doc.get("schema").and_then(Value::as_str) {
        Some("ft-perf/v1") => {}
        Some(other) => fail(&format!("unexpected schema \"{other}\"")),
        None => fail("missing \"schema\""),
    }

    let results = req_arr(&doc, "results");
    if results.is_empty() {
        fail("\"results\" is empty");
    }
    for (i, r) in results.iter().enumerate() {
        let ctx = format!("results[{i}]");
        req_str(r, "op", &ctx);
        req_str(r, "engine", &ctx);
        req_str(r, "workload", &ctx);
        if req_num(r, "n", &ctx) < 1.0 {
            fail(&format!("{ctx}: n < 1"));
        }
        req_num(r, "median_ns", &ctx);
        if req_num(r, "iters", &ctx) < 1.0 {
            fail(&format!("{ctx}: iters < 1"));
        }
    }

    for (i, s) in req_arr(&doc, "speedups").iter().enumerate() {
        let ctx = format!("speedups[{i}]");
        req_str(s, "op", &ctx);
        req_str(s, "workload", &ctx);
        req_num(s, "n", &ctx);
        if req_num(s, "speedup", &ctx) <= 0.0 {
            fail(&format!("{ctx}: speedup <= 0"));
        }
    }

    // The streamed tier: every row times the streamed engine; the
    // materialized twin and the ratio are null above the duel cap.
    let large = req_arr(&doc, "large_n");
    if large.is_empty() {
        fail("\"large_n\" is empty");
    }
    for (i, r) in large.iter().enumerate() {
        let ctx = format!("large_n[{i}]");
        req_str(r, "workload", &ctx);
        req_num(r, "n", &ctx);
        req_num(r, "streamed_median_ns", &ctx);
        req_num(r, "cycles", &ctx);
        let mat = r
            .get("materialized_median_ns")
            .unwrap_or_else(|| fail(&format!("{ctx}: missing \"materialized_median_ns\"")));
        let sp = r
            .get("speedup")
            .unwrap_or_else(|| fail(&format!("{ctx}: missing \"speedup\"")));
        match (mat, sp) {
            (Value::Null, Value::Null) => {}
            (Value::Num(m), Value::Num(x)) if *m >= 0.0 && *x > 0.0 => {}
            _ => fail(&format!(
                "{ctx}: materialized_median_ns/speedup must both be numbers or both null"
            )),
        }
    }

    // The streamed collective rows ride in large_n; both families must be
    // present so a full run can't silently drop them.
    for wl in ["allreduce", "alltoall"] {
        if !large
            .iter()
            .any(|r| r.get("workload").and_then(Value::as_str) == Some(wl))
        {
            fail(&format!("large_n: missing \"{wl}\" collective row"));
        }
    }

    // The topology block: the generalized-topology comparison. All three
    // constructor families must be present (the experiment exists to compare
    // them), every row must deliver its whole permutation in ≥ 1 cycle, and
    // the measured λ can never beat the permutation lower bound's floor of
    // zero — beating the *bound itself* is legitimate (a random permutation
    // is rarely the worst case), so only internal consistency is asserted.
    let topology = req_arr(&doc, "topology");
    if topology.is_empty() {
        fail("\"topology\" is empty");
    }
    for (i, t) in topology.iter().enumerate() {
        let ctx = format!("topology[{i}]");
        req_str(t, "family", &ctx);
        req_str(t, "spec", &ctx);
        if req_num(t, "leaves", &ctx) < 2.0 {
            fail(&format!("{ctx}: leaves < 2"));
        }
        if req_num(t, "padded_n", &ctx) < req_num(t, "leaves", &ctx) {
            fail(&format!("{ctx}: padded_n < leaves"));
        }
        if req_num(t, "messages", &ctx) < 1.0 {
            fail(&format!("{ctx}: messages < 1"));
        }
        if req_num(t, "lambda_bound", &ctx) <= 0.0 {
            fail(&format!("{ctx}: lambda_bound <= 0"));
        }
        if req_num(t, "lambda", &ctx) < 0.0 {
            fail(&format!("{ctx}: lambda < 0"));
        }
        let sim_cycles = req_num(t, "sim_cycles", &ctx);
        if sim_cycles < 1.0 || req_num(t, "sched_cycles", &ctx) < 1.0 {
            fail(&format!("{ctx}: cycle counts must be >= 1"));
        }
        let dpc = req_num(t, "delivered_per_cycle", &ctx);
        if dpc <= 0.0 {
            fail(&format!("{ctx}: delivered_per_cycle <= 0"));
        }
        if (dpc * sim_cycles - req_num(t, "messages", &ctx)).abs() > 0.5 * sim_cycles {
            fail(&format!(
                "{ctx}: delivered_per_cycle inconsistent with messages/sim_cycles"
            ));
        }
        for key in ["switches", "cables", "wires", "bisection"] {
            if req_num(t, key, &ctx) < 1.0 {
                fail(&format!("{ctx}: {key} < 1"));
            }
        }
        req_num(t, "volume_proxy", &ctx);
    }
    for family in ["universal", "kary", "twolayer"] {
        if !topology
            .iter()
            .any(|t| t.get("family").and_then(Value::as_str) == Some(family))
        {
            fail(&format!("topology: missing \"{family}\" family row"));
        }
    }

    // The serve block: the coalescing service measurement. The process
    // baseline pair follows the large_n null rule — both null (binary not
    // built, gate skipped) or both positive numbers.
    let serve = doc
        .get("serve")
        .unwrap_or_else(|| fail("missing \"serve\" block"));
    let ctx = "serve";
    for key in [
        "n",
        "w",
        "slots",
        "clients",
        "requests",
        "messages_per_request",
        "requests_per_sec",
        "p50_us",
        "p99_us",
        "busy",
        "reject_rate",
        "batches",
        "batch_max",
        "batch_mean_x1000",
        "lambda_max",
        "baseline_cold_arena_ns",
        "speedup_vs_cold",
    ] {
        req_num(serve, key, ctx);
    }
    if req_num(serve, "requests_per_sec", ctx) <= 0.0 {
        fail("serve: requests_per_sec <= 0");
    }
    match serve.get("outputs_match_solo") {
        Some(Value::Bool(true)) => {}
        Some(Value::Bool(false)) => fail("serve: outputs_match_solo is false"),
        _ => fail("serve: missing boolean \"outputs_match_solo\""),
    }
    let proc_ns = serve
        .get("baseline_process_ns")
        .unwrap_or_else(|| fail("serve: missing \"baseline_process_ns\""));
    let proc_sp = serve
        .get("speedup_vs_process")
        .unwrap_or_else(|| fail("serve: missing \"speedup_vs_process\""));
    match (proc_ns, proc_sp) {
        (Value::Null, Value::Null) => {}
        (Value::Num(m), Value::Num(x)) if *m > 0.0 && *x > 0.0 => {}
        _ => {
            fail("serve: baseline_process_ns/speedup_vs_process must both be positive or both null")
        }
    }

    // The telemetry_overhead block: metrics-on vs metrics-off serve
    // throughput. Both sides must have measured real traffic; the ratio
    // itself gates inside ft-perf (full runs only), so here we only reject
    // impossible values that would mean the duel never ran.
    let overhead = doc
        .get("telemetry_overhead")
        .unwrap_or_else(|| fail("missing \"telemetry_overhead\" block"));
    let ctx = "telemetry_overhead";
    for key in ["full_rps", "noop_rps", "ratio"] {
        if req_num(overhead, key, ctx) <= 0.0 {
            fail(&format!("{ctx}: {key} <= 0"));
        }
    }
    if req_num(overhead, "rounds", ctx) < 1.0 {
        fail("telemetry_overhead: rounds < 1");
    }
    if req_num(overhead, "requests_per_round", ctx) < 1.0 {
        fail("telemetry_overhead: requests_per_round < 1");
    }

    let telemetry = doc
        .get("telemetry")
        .unwrap_or_else(|| fail("missing \"telemetry\""));
    if telemetry.get("size_caps").is_none() {
        fail("telemetry: missing \"size_caps\"");
    }
    for (i, c) in req_arr(telemetry, "capped_rows").iter().enumerate() {
        let ctx = format!("capped_rows[{i}]");
        req_str(c, "op", &ctx);
        req_num(c, "cap", &ctx);
    }
    req_arr(telemetry, "gate_runs");

    println!(
        "bench_check: {path} ok ({} results, {} speedups, {} large_n rows, {} topology rows)",
        results.len(),
        req_arr(&doc, "speedups").len(),
        large.len(),
        topology.len()
    );
}
