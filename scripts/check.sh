#!/usr/bin/env bash
# Repo gate: build, test, format check, and a quick benchmark smoke pass.
# Everything runs offline — no network, no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace --release"
cargo test --workspace --release --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run (bench-only code must keep compiling)"
cargo bench --workspace --no-run

echo "==> ft-perf --smoke (+ bench_check schema validation)"
smoke_json="$(mktemp --suffix .json)"
trap 'rm -f "$smoke_json"' EXIT
cargo run --release -p ft-bench --bin ft-perf -- --smoke --out "$smoke_json"
cargo run --release -p ft-bench --bin bench_check -- "$smoke_json"

echo "==> streamed million-leaf smoke (n = 2^20, lazy ingest, time-capped)"
# One full streamed permutation at 2^20 leaves through the packed engine:
# proves the lazy path works at the scale it exists for, and that it does
# so in interactive time (the cap is generous; ~1s on the validation host).
timeout 120 cargo run --release -p ft-bench --bin ft-perf -- --stream-million

echo "==> ftsim report / trace smoke (telemetry)"
report_json="$(cargo run --release --quiet --bin ftsim -- \
  report --n 64 --w 16 --workload krel:2 --format json)"
case "$report_json" in
  '{"schema":"ftsim-report/v2"'*'"client_p50_us":'*'}') ;;
  *) echo "ftsim report --format json emitted an unexpected document" >&2
     exit 1 ;;
esac
cargo run --release --quiet --bin ftsim -- \
  trace --n 32 --w 8 --workload perm --events 256 --verify 1 > /dev/null
# --verify must run (and be able to fail) with csv output too.
cargo run --release --quiet --bin ftsim -- \
  trace --n 32 --w 8 --workload perm --format csv --verify 1 > /dev/null

echo "==> ftsim shard smoke (distributed engine)"
shard_json="$(cargo run --release --quiet --bin ftsim -- \
  shard --n 64 --w 16 --workload perm --shards 2 --format json)"
case "$shard_json" in
  '{"schema":"ftsim-shard/v1"'*'"matches_single_arena":true'*'}') ;;
  *) echo "ftsim shard --format json emitted an unexpected document" >&2
     echo "$shard_json" >&2
     exit 1 ;;
esac

echo "==> ftsim shard shm smoke (shared-memory rings)"
shm_json="$(cargo run --release --quiet --bin ftsim -- \
  shard --n 64 --w 16 --workload perm --shards 4 --transport shm --format json)"
case "$shm_json" in
  '{"schema":"ftsim-shard/v1"'*'"transport":"shm"'*'"matches_single_arena":true'*'"merge_ns":'*'}') ;;
  *) echo "ftsim shard --transport shm emitted an unexpected document" >&2
     echo "$shm_json" >&2
     exit 1 ;;
esac

echo "==> run_sharded perf gate (overlapped coordinator vs single arena)"
cargo run --release -p ft-bench --bin ft-perf -- --shard-gate

echo "==> ftsim serve smoke (coalescing service, verified clients, reaping)"
# Spawn the service with its stdin on a fifo we hold open (closing it is
# the graceful-shutdown signal), drive it with four verifying clients plus
# one dead client the 500ms idle reaper must clear, then close the fifo
# and check the summary line. Everything is time-capped: a hang here is a
# bug, not slowness.
serve_fifo="$(mktemp -u).fifo"; mkfifo "$serve_fifo"
serve_log="$(mktemp --suffix .serve)"
trap 'rm -f "$smoke_json" "$serve_fifo" "$serve_log"' EXIT
target/release/ftsim serve --n 64 --w 16 --slots 4 --idle-ms 500 \
  --addr 127.0.0.1:0 --metrics-addr 127.0.0.1:0 < "$serve_fifo" > "$serve_log" &
serve_pid=$!
exec 9> "$serve_fifo"   # hold the write end open: server stays up
for _ in $(seq 50); do
  grep -q '"event":"listening"' "$serve_log" && break
  sleep 0.1
done
serve_addr="$(sed -n 's/.*"addr":"\([^"]*\)".*"metrics_addr".*/\1/p;q' "$serve_log")"
metrics_addr="$(sed -n 's/.*"metrics_addr":"\([^"]*\)".*/\1/p;q' "$serve_log")"
if [ -z "$serve_addr" ] || [ -z "$metrics_addr" ]; then
  echo "ftsim serve never printed its listening line (with metrics_addr)" >&2
  cat "$serve_log" >&2; exit 1
fi
# A dead client (handshake then silence) in the background while four
# verifying clients hammer the service — reaping must not disturb them.
timeout 60 target/release/ftsim bench-client --addr "$serve_addr" \
  --n 64 --w 16 --clients 1 --requests 0 --mode dead --hold-ms 1000 &
dead_pid=$!
timeout 60 target/release/ftsim bench-client --addr "$serve_addr" \
  --n 64 --w 16 --clients 4 --requests 120 --messages 32 --verify 1
# Scrape the live metrics endpoint between the two client waves and again
# after the second: the served counter must be monotonic and the JSON page
# must carry every documented block.
scrape1="$(timeout 60 target/release/ftsim metrics-scrape --addr "$metrics_addr")"
timeout 60 target/release/ftsim bench-client --addr "$serve_addr" \
  --n 64 --w 16 --clients 4 --requests 80 --engine online --verify 1
scrape2="$(timeout 60 target/release/ftsim metrics-scrape --addr "$metrics_addr")"
case "$scrape2" in
  '{"schema":"ftsim-metrics/v1"'*'"requests":'*'"lambda_budget":'*'"batch_occupancy":'*'"stages":'*'"wall_by_width":'*'"spans":'*'}') ;;
  *) echo "metrics-scrape JSON page is missing documented blocks" >&2
     echo "$scrape2" >&2; exit 1 ;;
esac
served1="$(printf '%s' "$scrape1" | grep -o '"served":[0-9]*' | head -n1 | tr -dc 0-9)"
served2="$(printf '%s' "$scrape2" | grep -o '"served":[0-9]*' | head -n1 | tr -dc 0-9)"
if [ -z "$served1" ] || [ -z "$served2" ] || [ "$served2" -lt "$served1" ] \
  || [ "$served1" -lt 120 ]; then
  echo "metrics-scrape served counter is not monotonic (got $served1 -> $served2)" >&2
  exit 1
fi
timeout 60 target/release/ftsim metrics-scrape --addr "$metrics_addr" --path /metrics \
  | grep -q '^ftsim_serve_requests_total ' || {
  echo "metrics-scrape /metrics page lacks the Prometheus served counter" >&2
  exit 1
}
wait "$dead_pid"
exec 9>&-               # close the fifo: graceful shutdown
for _ in $(seq 50); do
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
  echo "ftsim serve did not exit after stdin EOF" >&2
  kill "$serve_pid"; exit 1
fi
wait "$serve_pid"
grep -q '"event":"summary"' "$serve_log" || {
  echo "ftsim serve exited without a summary line" >&2
  cat "$serve_log" >&2; exit 1
}
grep -q '"served":200' "$serve_log" || {
  echo "ftsim serve summary did not count 200 served requests" >&2
  cat "$serve_log" >&2; exit 1
}

echo "==> ftsim topology smoke (generalized topologies, all three families)"
# Every constructor family must describe itself as a well-formed
# ftsim-topology/v1 document, and the engines must accept the same specs.
for spec in "universal:n=64,w=16" "kary:k=8,over=4" "twolayer:r=16,p=8"; do
  topo_json="$(cargo run --release --quiet --bin ftsim -- \
    topology --topology "$spec" --format json)"
  case "$topo_json" in
    '{"schema":"ftsim-topology/v1"'*'"levels":['*'"lambda_perm_bound":'*'"cost":{"switches":'*'}') ;;
    *) echo "ftsim topology --topology $spec emitted an unexpected document" >&2
       echo "$topo_json" >&2
       exit 1 ;;
  esac
done
# A mixed-radix machine end to end through the simulator: 104 processors
# (13 pods of 8) embedded on a padded binary tree.
topo_run="$(cargo run --release --quiet --bin ftsim -- \
  simulate --topology twolayer:r=16,p=8,n=100 --workload perm --format json)"
case "$topo_run" in
  '{"schema":"ftsim-simulate/v1","topology":"twolayer:r=16,p=8,n=104"'*'"messages":104'*'}') ;;
  *) echo "ftsim simulate --topology emitted an unexpected document" >&2
     echo "$topo_run" >&2
     exit 1 ;;
esac
# Malformed specs must be rejected with a usage error, not a panic.
if cargo run --release --quiet --bin ftsim -- \
  topology --topology kary:k=7 >/dev/null 2>&1; then
  echo "ftsim topology accepted a malformed spec (kary:k=7)" >&2
  exit 1
fi

echo "==> ftsim shard fault smoke (dead link must fail structured, not hang)"
# A 100% drop plan can never complete: the run must terminate within the
# timeout wrapper with a structured error and a non-zero exit, never hang.
fault_json="$(timeout 60 cargo run --release --quiet --bin ftsim -- \
  shard --n 32 --shards 2 --drop 1.0 --timeout-ms 100 --retries 1 --format json)" \
  && { echo "ftsim shard with a dead link unexpectedly succeeded" >&2; exit 1; }
rc=$?
if [ "$rc" -eq 124 ]; then
  echo "ftsim shard with a dead link hung until the timeout wrapper killed it" >&2
  exit 1
fi
case "$fault_json" in
  '{"schema":"ftsim-shard/v1","error":{"kind":"timeout"'*'}') ;;
  *) echo "ftsim shard fault run emitted an unexpected document" >&2
     echo "$fault_json" >&2
     exit 1 ;;
esac

echo "All checks passed."
