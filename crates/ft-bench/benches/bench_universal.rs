//! Bench for E6: the full Theorem 10 pipeline.

use ft_bench::timing::bench;
use ft_core::rng::SplitMix64;
use ft_networks::Mesh3D;
use ft_universal::{simulate_on_fat_tree, Identification};
use ft_workloads::random_permutation;

fn main() {
    let net = Mesh3D::new(8); // 512 processors
    bench("identification_mesh3d_512", || {
        Identification::build(&net, 1.0)
    });

    let net = Mesh3D::new(6);
    bench("theorem10_pipeline_mesh3d_216", || {
        let mut rng = SplitMix64::seed_from_u64(7);
        let msgs = random_permutation(216, &mut rng);
        simulate_on_fat_tree(&net, &msgs, 1.0, &mut rng)
    });

    let net = Mesh3D::new(4);
    bench("emulation_build_mesh3d_64", || {
        ft_universal::Emulation::build(&net, 1.0)
    });
}
