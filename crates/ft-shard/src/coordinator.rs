//! The cross-shard coordinator: drives N shard workers through delivery
//! cycles and arbitrates the root levels, reproducing
//! [`ft_sim::run_to_completion`] byte for byte.
//!
//! The protocol is v2 ("retained pending"): `Load` ships each shard its
//! messages once, and every cycle exchanges only deltas —
//!
//! 1. **Cycle → Claims2**: the request carries the arbitration seed, a
//!    verdict bitmap retiring last cycle's exported claims, and the
//!    shard's arbitration-id remap (½ word per pending message); the reply
//!    is the surviving root-crossers in a two-word compact encoding.
//! 2. **Top arbitration** (coordinator-local): the claims of *all* shards,
//!    merged in global-id order, pass through the levels above the shard
//!    boundary in one [`SimArena`]. Merging by id makes the contender set
//!    per root channel independent of shard count and claim arrival order,
//!    and random arbitration hashes the coordinator-global message id — so
//!    outcomes are invariant under resharding.
//! 3. **Incoming2 → Outcomes**: survivors descend their destination
//!    shard's subtree; shards report delivered ids and cycle ticks.
//!
//! Unlike the lock-step v1 engine, the coordinator is an *event loop*: it
//! keeps every link's outstanding request in a deque with its own deadline
//! and retransmit schedule, receives from whichever shard answers first,
//! and processes each reply the moment it lands — claim frames are merged
//! incrementally while slower shards are still computing, down-frames go
//! out one by one as they are encoded, and the next cycle's requests are
//! dispatched the instant the last outcome arrives. The only barrier left
//! is the data dependency itself: root arbitration needs every claim, and
//! the next cycle's id remap needs every delivery verdict. Timeouts and
//! backoffs never sleep the loop — a late shard's retransmit is just
//! another scheduled event.
//!
//! The steady-state loop is allocation-free: request frames come from a
//! buffer pool, replies land in one reused receive buffer, and every
//! per-cycle structure (merge runs, verdict bitmaps, remaps, delivery
//! flags) is grow-only scratch.

use crate::fault::{FaultPlan, FaultState, SendFate};
use crate::proto::{ClaimsV2, CycleView, InitMsg, LoadMsg, OutcomesView};
use crate::transport::{InProcTransport, PipeTransport, ShmTransport, Transport, TransportError};
use crate::wire::{self, FrameKind};
use ft_core::{FatTree, Message, MessageSet};
use ft_sim::{Arbitration, RunReport, ShardClaim, SimArena, SimConfig};
use ft_telemetry::{NoopRecorder, Recorder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the coordinator reaches its workers.
#[derive(Clone, Debug)]
pub enum TransportKind {
    /// Worker threads in this process (channels).
    InProcess,
    /// Worker threads behind zero-copy shared-memory rings.
    Shm,
    /// One worker child process per shard; `cmd[0]` is the executable,
    /// `cmd[1..]` its arguments — typically `[<ftsim>, "shard-worker"]`.
    Pipe { cmd: Vec<String> },
}

/// A sharded run's configuration.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Number of shards; a power of two with `lg shards ≤ tree height`.
    /// Shard `s` owns the subtree under heap node `shards + s`.
    pub shards: u32,
    /// The simulation config (shared by every shard and the top arena).
    pub sim: SimConfig,
    pub transport: TransportKind,
    /// Frame-level fault injection on both directions of every link.
    pub faults: FaultPlan,
    /// How long one awaited reply may take before a retry.
    pub timeout: Duration,
    /// Retransmits after the first attempt.
    pub retries: u32,
    /// Delay between a timeout and its retransmit (scheduled, not slept —
    /// other links keep being served).
    pub backoff: Duration,
    /// Optional live per-link counter hub: when set, every transport
    /// event also bumps these atomics, so a scrape endpoint can watch the
    /// run while it is still in flight (post-hoc totals stay in
    /// [`ShardRunStats`]).
    pub live: Option<Arc<LinkCounters>>,
}

impl ShardConfig {
    /// In-process transport, no faults, and retry bounds generous enough
    /// that a healthy run never trips them.
    pub fn new(shards: u32, sim: SimConfig) -> Self {
        ShardConfig {
            shards,
            sim,
            transport: TransportKind::InProcess,
            faults: FaultPlan::none(),
            timeout: Duration::from_secs(5),
            retries: 4,
            backoff: Duration::from_millis(10),
            live: None,
        }
    }
}

/// Live per-link transport counters (index = shard), updated at the same
/// sites as [`ShardRunStats`]'s per-link vectors. All stores are relaxed
/// — readers see each counter monotonically, which is all a scrape page
/// needs.
#[derive(Debug, Default)]
pub struct LinkCounters {
    pub frames_sent: Vec<AtomicU64>,
    pub frames_received: Vec<AtomicU64>,
    pub retries: Vec<AtomicU64>,
    pub checksum_rejects: Vec<AtomicU64>,
}

impl LinkCounters {
    pub fn new(shards: usize) -> Self {
        let col = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        LinkCounters {
            frames_sent: col(shards),
            frames_received: col(shards),
            retries: col(shards),
            checksum_rejects: col(shards),
        }
    }

    fn bump(col: &[AtomicU64], s: usize) {
        if let Some(c) = col.get(s) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Why a sharded run could not complete. Every variant is a terminal,
/// reportable state — the coordinator never hangs on a sick link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// The configuration cannot describe a valid sharding.
    BadConfig(String),
    /// A worker process could not be spawned.
    Spawn(String),
    /// A shard never answered within the retry budget.
    Timeout { shard: u32, seq: u32, attempts: u32 },
    /// A link carried something the protocol cannot explain.
    Protocol { shard: u32, what: String },
    /// A worker reported an unrecoverable error code.
    Worker { shard: u32, code: u64 },
    /// A cycle delivered nothing — the switch cannot route even one
    /// message (the sharded analogue of `run_to_completion`'s panic).
    NoProgress { cycle: usize },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::BadConfig(why) => write!(f, "bad shard config: {why}"),
            ShardError::Spawn(why) => write!(f, "worker spawn failed: {why}"),
            ShardError::Timeout {
                shard,
                seq,
                attempts,
            } => write!(
                f,
                "shard {shard} never answered request {seq} ({attempts} attempts)"
            ),
            ShardError::Protocol { shard, what } => {
                write!(f, "protocol violation on shard {shard}: {what}")
            }
            ShardError::Worker { shard, code } => {
                write!(f, "shard {shard} failed with worker error code {code}")
            }
            ShardError::NoProgress { cycle } => {
                write!(f, "no progress in delivery cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl ShardError {
    /// Machine-readable kind tag, stable for scripts and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ShardError::BadConfig(_) => "bad_config",
            ShardError::Spawn(_) => "spawn",
            ShardError::Timeout { .. } => "timeout",
            ShardError::Protocol { .. } => "protocol",
            ShardError::Worker { .. } => "worker",
            ShardError::NoProgress { .. } => "no_progress",
        }
    }
}

/// Transport and barrier telemetry for one sharded run.
#[derive(Clone, Debug, Default)]
pub struct ShardRunStats {
    pub shards: u32,
    /// Transport name (`"inproc"` / `"shm"` / `"pipe"`).
    pub transport: &'static str,
    /// Physical frames put on the wire (after fault drops/duplicates).
    pub frames_sent: u64,
    pub frames_received: u64,
    /// Word volume of those frames (×8 for bytes).
    pub words_sent: u64,
    pub words_received: u64,
    /// Request retransmits after a timeout.
    pub retries: u64,
    /// Received frames rejected by checksum/decode.
    pub checksum_rejects: u64,
    /// Received frames discarded as stale duplicates.
    pub duplicates: u64,
    /// Total coordinator time blocked waiting on shard replies.
    pub barrier_wait_ns: u64,
    /// Coordinator time in top-level arbitration.
    pub top_ns: u64,
    /// Coordinator time merging claim frames (overlapped with shard
    /// compute: all but the last run's merge happens while other shards
    /// are still in their up phase).
    pub merge_ns: u64,
    /// Per-shard self-reported up-phase compute time.
    pub shard_up_ns: Vec<u64>,
    /// Per-shard self-reported down-phase compute time.
    pub shard_down_ns: Vec<u64>,
    /// Per-link physical frames sent (index = shard; sums to
    /// `frames_sent`).
    pub link_frames_sent: Vec<u64>,
    /// Per-link frames received.
    pub link_frames_received: Vec<u64>,
    /// Per-link request retransmits.
    pub link_retries: Vec<u64>,
    /// Per-link received frames rejected by checksum/decode.
    pub link_checksum_rejects: Vec<u64>,
}

/// A completed sharded run: the engine-identical [`RunReport`] plus
/// transport telemetry.
#[derive(Clone, Debug)]
pub struct ShardRunReport {
    pub run: RunReport,
    pub stats: ShardRunStats,
}

/// Run `msgs` to completion over `cfg.shards` shards. The returned
/// [`RunReport`] is byte-identical to `ft_sim::run_to_completion(ft, msgs,
/// &cfg.sim)` for every shard count and transport.
pub fn run_sharded(
    ft: &FatTree,
    msgs: &MessageSet,
    cfg: &ShardConfig,
) -> Result<ShardRunReport, ShardError> {
    run_sharded_with(ft, msgs, cfg, &mut NoopRecorder)
}

/// [`run_sharded`] with a telemetry [`Recorder`] observing cycle
/// boundaries and the coordinator's per-cycle barrier/merge/top counters
/// (matching `run_to_completion_with`; per-channel load stays inside the
/// workers and is not recorded).
pub fn run_sharded_with<R: Recorder>(
    ft: &FatTree,
    msgs: &MessageSet,
    cfg: &ShardConfig,
    rec: &mut R,
) -> Result<ShardRunReport, ShardError> {
    if cfg.shards == 0 || !cfg.shards.is_power_of_two() {
        return Err(ShardError::BadConfig(format!(
            "shard count {} is not a power of two",
            cfg.shards
        )));
    }
    let boundary = cfg.shards.trailing_zeros();
    if boundary > ft.height() {
        return Err(ShardError::BadConfig(format!(
            "{} shards exceed the tree's {} top-level subtrees",
            cfg.shards,
            1u64 << ft.height()
        )));
    }
    let transport: Box<dyn Transport> = match &cfg.transport {
        TransportKind::InProcess => Box::new(InProcTransport::spawn(cfg.shards as usize)),
        TransportKind::Shm => {
            // Each ring must hold the largest single frame (LOAD, at two
            // words per message when one shard owns everything) with room
            // for a duplicate behind it.
            let ring_words = (4 * msgs.len() + 4096).next_power_of_two();
            Box::new(ShmTransport::spawn(cfg.shards as usize, ring_words))
        }
        TransportKind::Pipe { cmd } => Box::new(
            PipeTransport::spawn(cmd, cfg.shards as usize)
                .map_err(|e| ShardError::Spawn(e.to_string()))?,
        ),
    };
    let links = Links::new(transport, cfg);
    run_loop(ft, cfg, boundary, links, msgs, rec)
}

/// What reply kind an outstanding request is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReplyTag {
    InitAck,
    LoadAck,
    Claims,
    Outcomes,
    ShutdownAck,
}

impl ReplyTag {
    fn expect(self) -> FrameKind {
        match self {
            ReplyTag::InitAck => FrameKind::InitAck,
            ReplyTag::LoadAck => FrameKind::LoadAck,
            ReplyTag::Claims => FrameKind::Claims2,
            ReplyTag::Outcomes => FrameKind::Outcomes,
            ReplyTag::ShutdownAck => FrameKind::ShutdownAck,
        }
    }
}

/// One in-flight request: the pristine frame (kept for retransmission),
/// its reply deadline, and — after a timeout — the scheduled retransmit.
struct OutReq {
    seq: u32,
    tag: ReplyTag,
    frame: Vec<u64>,
    deadline: Instant,
    retransmit_at: Option<Instant>,
    attempts: u32,
}

/// The transport plus everything needed to run it as an event loop:
/// per-link sequence numbers, outstanding requests, fault state, a frame
/// pool, and the shared receive buffer.
struct Links {
    transport: Box<dyn Transport>,
    seq_next: Vec<u32>,
    outstanding: Vec<Vec<OutReq>>,
    faults: Vec<Option<FaultState>>,
    /// Recycled frame buffers (requests return here when their reply
    /// lands).
    pool: Vec<Vec<u64>>,
    /// Scratch for the faulted copy of an outgoing frame.
    fault_scratch: Vec<u64>,
    /// Where `poll` leaves the received frame; `payload()` slices it.
    rbuf: Vec<u64>,
    timeout: Duration,
    retries: u32,
    backoff: Duration,
    stats: ShardRunStats,
    /// Mirror of the per-link stats for live scraping (see [`ShardConfig::live`]).
    live: Option<Arc<LinkCounters>>,
}

/// Upper bound on one idle `recv_any` wait when no deadline is near.
const IDLE_WAIT: Duration = Duration::from_millis(100);

impl Links {
    fn new(transport: Box<dyn Transport>, cfg: &ShardConfig) -> Self {
        let shards = cfg.shards as usize;
        let stats = ShardRunStats {
            shards: cfg.shards,
            transport: transport.name(),
            shard_up_ns: vec![0; shards],
            shard_down_ns: vec![0; shards],
            link_frames_sent: vec![0; shards],
            link_frames_received: vec![0; shards],
            link_retries: vec![0; shards],
            link_checksum_rejects: vec![0; shards],
            ..ShardRunStats::default()
        };
        Links {
            transport,
            seq_next: vec![0; shards],
            outstanding: (0..shards).map(|_| Vec::new()).collect(),
            faults: (0..shards)
                .map(|s| (!cfg.faults.is_none()).then(|| FaultState::new(cfg.faults, s as u64 * 2)))
                .collect(),
            pool: Vec::new(),
            fault_scratch: Vec::new(),
            rbuf: Vec::new(),
            timeout: cfg.timeout,
            retries: cfg.retries,
            backoff: cfg.backoff,
            stats,
            live: cfg.live.clone(),
        }
    }

    /// Count one physical frame put on shard `s`'s link.
    fn note_sent(&mut self, s: usize, words: usize) {
        self.stats.frames_sent += 1;
        self.stats.words_sent += words as u64;
        self.stats.link_frames_sent[s] += 1;
        if let Some(live) = &self.live {
            LinkCounters::bump(&live.frames_sent, s);
        }
    }

    /// Compose and send a request to shard `s` and register it as
    /// outstanding. `payload` appends the body to the open frame.
    fn request(
        &mut self,
        s: usize,
        kind: FrameKind,
        tag: ReplyTag,
        payload: impl FnOnce(&mut Vec<u64>),
    ) -> Result<(), ShardError> {
        let mut frame = self.pool.pop().unwrap_or_default();
        let seq = self.seq_next[s];
        wire::begin_frame(&mut frame, kind, s as u16, seq);
        payload(&mut frame);
        wire::end_frame(&mut frame);
        self.seq_next[s] = seq.wrapping_add(1);
        self.send_faulted(s, &frame)?;
        self.outstanding[s].push(OutReq {
            seq,
            tag,
            frame,
            deadline: Instant::now() + self.timeout,
            retransmit_at: None,
            attempts: 1,
        });
        Ok(())
    }

    /// Put one logical frame on shard `s`'s link, through fault rolls.
    fn send_faulted(&mut self, s: usize, logical: &[u64]) -> Result<(), ShardError> {
        let closed = |e: TransportError| ShardError::Protocol {
            shard: s as u32,
            what: e.to_string(),
        };
        let copies = match &mut self.faults[s] {
            None => 1,
            Some(fs) => {
                self.fault_scratch.clear();
                self.fault_scratch.extend_from_slice(logical);
                match fs.next(&mut self.fault_scratch) {
                    SendFate::Drop => 0,
                    SendFate::Send => 1,
                    SendFate::SendTwice => 2,
                }
            }
        };
        let faulted = self.faults[s].is_some();
        for _ in 0..copies {
            let words = if faulted {
                self.fault_scratch.len()
            } else {
                logical.len()
            };
            self.note_sent(s, words);
            let sent = if faulted {
                self.transport.send(s, &self.fault_scratch)
            } else {
                self.transport.send(s, logical)
            };
            sent.map_err(closed)?;
        }
        Ok(())
    }

    /// Drive the event loop until one outstanding request completes:
    /// receives from any shard, discards duplicates and corrupt frames,
    /// retransmits whatever times out (without sleeping the loop), and
    /// fails structurally when a retry budget is exhausted. On `Ok((s,
    /// tag))` the reply frame is in `rbuf` — read it via [`payload`].
    fn poll(&mut self) -> Result<(usize, ReplyTag), ShardError> {
        loop {
            // Fire every due deadline and find the next scheduled event.
            let now = Instant::now();
            let mut next_event = now + IDLE_WAIT;
            for s in 0..self.outstanding.len() {
                for i in 0..self.outstanding[s].len() {
                    let req = &mut self.outstanding[s][i];
                    if let Some(rt) = req.retransmit_at {
                        if now >= rt {
                            req.retransmit_at = None;
                            req.deadline = now + self.timeout;
                            req.attempts += 1;
                            self.stats.retries += 1;
                            self.stats.link_retries[s] += 1;
                            if let Some(live) = &self.live {
                                LinkCounters::bump(&live.retries, s);
                            }
                            let frame = std::mem::take(&mut self.outstanding[s][i].frame);
                            self.send_faulted(s, &frame)?;
                            self.outstanding[s][i].frame = frame;
                        }
                    } else if now >= req.deadline {
                        if req.attempts > self.retries {
                            return Err(ShardError::Timeout {
                                shard: s as u32,
                                seq: req.seq,
                                attempts: req.attempts,
                            });
                        }
                        req.retransmit_at = Some(now + self.backoff);
                    }
                    let req = &self.outstanding[s][i];
                    let t = req.retransmit_at.unwrap_or(req.deadline);
                    if t < next_event {
                        next_event = t;
                    }
                }
            }
            let wait = next_event
                .saturating_duration_since(Instant::now())
                .max(Duration::from_micros(100));
            let t0 = Instant::now();
            let got = self.transport.recv_any(wait, &mut self.rbuf);
            self.stats.barrier_wait_ns += t0.elapsed().as_nanos() as u64;
            let s = match got {
                Ok(s) => s,
                Err(TransportError::Timeout) => continue,
                Err(e @ TransportError::Closed(_)) => {
                    // Attribute the dead transport to the earliest waiter.
                    let shard = (0..self.outstanding.len())
                        .find(|&s| !self.outstanding[s].is_empty())
                        .unwrap_or(0) as u32;
                    return Err(ShardError::Protocol {
                        shard,
                        what: e.to_string(),
                    });
                }
            };
            self.stats.frames_received += 1;
            self.stats.words_received += self.rbuf.len() as u64;
            self.stats.link_frames_received[s] += 1;
            if let Some(live) = &self.live {
                LinkCounters::bump(&live.frames_received, s);
            }
            let (kind, seq, code) = match wire::decode(&self.rbuf) {
                Ok(f) => (f.kind, f.seq, f.payload.first().copied().unwrap_or(0)),
                Err(_) => {
                    // Corrupted in flight: the sender's retransmit (or our
                    // timeout) recovers.
                    self.stats.checksum_rejects += 1;
                    self.stats.link_checksum_rejects[s] += 1;
                    if let Some(live) = &self.live {
                        LinkCounters::bump(&live.checksum_rejects, s);
                    }
                    continue;
                }
            };
            match self.outstanding[s].iter().position(|r| r.seq == seq) {
                Some(i) => {
                    if kind == FrameKind::Error {
                        return Err(ShardError::Worker {
                            shard: s as u32,
                            code,
                        });
                    }
                    let tag = self.outstanding[s][i].tag;
                    if kind != tag.expect() {
                        return Err(ShardError::Protocol {
                            shard: s as u32,
                            what: format!("expected {:?} reply, got {:?}", tag.expect(), kind),
                        });
                    }
                    let req = self.outstanding[s].swap_remove(i);
                    self.pool.push(req.frame);
                    return Ok((s, tag));
                }
                None => {
                    if seq >= self.seq_next[s] {
                        return Err(ShardError::Protocol {
                            shard: s as u32,
                            what: format!("reply seq {seq} was never requested"),
                        });
                    }
                    // A reply to an already-completed request: the echo of
                    // a retransmit or a duplicate roll.
                    self.stats.duplicates += 1;
                }
            }
        }
    }

    /// The payload of the frame `poll` just completed with.
    fn payload(&self) -> &[u64] {
        let len = self.rbuf[1] as usize;
        &self.rbuf[2..2 + len]
    }
}

/// Merge two id-sorted claim runs (disjoint ids) into `out`.
fn merge_sorted(a: &[ShardClaim], b: &[ShardClaim], out: &mut Vec<ShardClaim>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].id <= b[j].id {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

fn run_loop<R: Recorder>(
    ft: &FatTree,
    cfg: &ShardConfig,
    boundary: u32,
    mut links: Links,
    msgs: &MessageSet,
    rec: &mut R,
) -> Result<ShardRunReport, ShardError> {
    let shards = cfg.shards as usize;
    let shift = ft.height() - boundary;
    let proto_err = |s: usize| {
        move |e: crate::proto::ProtoError| ShardError::Protocol {
            shard: s as u32,
            what: e.to_string(),
        }
    };

    // Partition the message set once; `shard_of[orig]` never changes.
    let all: Vec<Message> = msgs.iter().copied().collect();
    let m_total = all.len();
    let mut shard_of = vec![0u32; m_total];
    let mut load_ids: Vec<Vec<u32>> = vec![Vec::new(); shards];
    let mut load_msgs: Vec<Vec<Message>> = vec![Vec::new(); shards];
    for (i, m) in all.iter().enumerate() {
        let s = ((ft.leaf(m.src) >> shift) - cfg.shards) as usize;
        shard_of[i] = s as u32;
        load_ids[s].push(i as u32);
        load_msgs[s].push(*m);
    }

    // INIT and LOAD ride the pipeline window together: both go out
    // back-to-back per link, workers answer them in order.
    for s in 0..shards {
        let init = InitMsg {
            n: ft.n(),
            boundary,
            shard: s as u32,
            proto: wire::PROTO_VERSION,
            sim: cfg.sim,
            plan: cfg.faults,
            profile: ft.profile().clone(),
        };
        let enc = init.encode();
        links.request(s, FrameKind::Init, ReplyTag::InitAck, |b| {
            b.extend_from_slice(&enc)
        })?;
        links.request(s, FrameKind::Load, ReplyTag::LoadAck, |b| {
            LoadMsg::encode_into(b, m_total as u32, &load_ids[s], &load_msgs[s])
        })?;
    }
    for _ in 0..2 * shards {
        links.poll()?;
    }
    if R::ENABLED {
        rec.run_start(ft.height());
    }

    let mut top = SimArena::new(ft, &cfg.sim);
    // The coordinator's id mirror: original ids still pending, FIFO. Its
    // positions ARE this cycle's arbitration ids.
    let mut mirror: Vec<u32> = (0..m_total as u32).collect();
    let mut cycles = 0usize;
    // At least one message delivers per cycle, so `m_total` bounds both.
    let mut delivered_per_cycle = Vec::with_capacity(m_total);
    let mut delivery_order = Vec::with_capacity(m_total);
    let mut total_ticks = 0u64;

    // Grow-only per-cycle scratch.
    let mut remap: Vec<Vec<u32>> = vec![Vec::new(); shards];
    let mut verdict_bits: Vec<Vec<u64>> = vec![Vec::new(); shards];
    let mut exports_count = vec![0usize; shards];
    // `attr[id]` = (generation, source shard, export index) of the claim
    // with arbitration id `id` this cycle; stale entries are ignored via
    // the generation stamp.
    let mut attr: Vec<(u32, u32, u32)> = vec![(0, 0, 0); m_total];
    let mut merged: Vec<ShardClaim> = Vec::new();
    let mut merge_scratch: Vec<ShardClaim> = Vec::new();
    let mut run_scratch: Vec<ShardClaim> = Vec::new();
    let mut incoming: Vec<Vec<ShardClaim>> = vec![Vec::new(); shards];
    let mut delivered: Vec<bool> = Vec::new();

    for (s, r) in remap.iter_mut().enumerate() {
        r.extend_from_slice(&load_ids[s]);
    }

    while !mirror.is_empty() {
        // Identical per-cycle reseed to `run_to_completion`.
        let arb_seed = match cfg.sim.arbitration {
            Arbitration::Random(seed) => seed
                .wrapping_add(cycles as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            Arbitration::SlotOrder => 0,
        };
        if R::ENABLED {
            rec.cycle_start(cycles as u32, mirror.len() as u32);
        }
        let barrier_before = links.stats.barrier_wait_ns;
        // Dispatch the whole cycle: seed + verdicts + remap per shard.
        for s in 0..shards {
            links.request(s, FrameKind::Cycle, ReplyTag::Claims, |b| {
                CycleView::encode_into(
                    b,
                    cycles as u64,
                    arb_seed,
                    exports_count[s] as u32,
                    &verdict_bits[s],
                    &remap[s],
                )
            })?;
        }
        // Claims phase: merge each shard's sorted run the moment it lands,
        // while the stragglers are still computing their up passes.
        let gen = cycles as u32 + 1;
        let mut merge_ns = 0u64;
        merged.clear();
        for _ in 0..shards {
            let (s, tag) = links.poll()?;
            debug_assert_eq!(tag, ReplyTag::Claims);
            run_scratch.clear();
            let ns =
                ClaimsV2::decode_into(links.payload(), &mut run_scratch).map_err(proto_err(s))?;
            links.stats.shard_up_ns[s] += ns;
            exports_count[s] = run_scratch.len();
            verdict_bits[s].clear();
            verdict_bits[s].resize(run_scratch.len().div_ceil(64), 0);
            let t0 = Instant::now();
            for (i, c) in run_scratch.iter().enumerate() {
                if c.id as usize >= mirror.len() {
                    return Err(ShardError::Protocol {
                        shard: s as u32,
                        what: format!("claim id {} out of range", c.id),
                    });
                }
                attr[c.id as usize] = (gen, s as u32, i as u32);
            }
            merge_sorted(&merged, &run_scratch, &mut merge_scratch);
            std::mem::swap(&mut merged, &mut merge_scratch);
            merge_ns += t0.elapsed().as_nanos() as u64;
        }
        links.stats.merge_ns += merge_ns;
        // Top arbitration over the claims merged in global-id order.
        let t0 = Instant::now();
        let mut cycle_cfg = cfg.sim;
        if let Arbitration::Random(_) = cycle_cfg.arbitration {
            cycle_cfg.arbitration = Arbitration::Random(arb_seed);
        }
        top.shard_top(ft, &cycle_cfg, boundary, &mut merged);
        for inc in &mut incoming {
            inc.clear();
        }
        for c in &merged {
            if c.alive() {
                incoming[c.dst_shard(ft.height(), boundary) as usize].push(*c);
            }
        }
        let top_ns = t0.elapsed().as_nanos() as u64;
        links.stats.top_ns += top_ns;
        // Down-frames stream out one by one — the first shard starts
        // settling while the rest are still being encoded.
        for (s, inc) in incoming.iter().enumerate() {
            links.request(s, FrameKind::Incoming2, ReplyTag::Outcomes, |b| {
                ClaimsV2::encode_into(b, 0, inc)
            })?;
        }
        // Outcomes phase: apply each verdict as it lands.
        delivered.clear();
        delivered.resize(mirror.len(), false);
        let mut cycle_delivered = 0usize;
        let mut ticks = 0u32;
        for _ in 0..shards {
            let (s, tag) = links.poll()?;
            debug_assert_eq!(tag, ReplyTag::Outcomes);
            let v = OutcomesView::parse(links.payload()).map_err(proto_err(s))?;
            let down_ns = v.compute_ns;
            ticks = ticks.max(v.ticks);
            for &d in v.delivered {
                let id = d as usize;
                let slot = delivered.get_mut(id).ok_or_else(|| ShardError::Protocol {
                    shard: s as u32,
                    what: format!("delivered id {d} out of range"),
                })?;
                if *slot {
                    return Err(ShardError::Protocol {
                        shard: s as u32,
                        what: format!("message {d} delivered twice"),
                    });
                }
                *slot = true;
                cycle_delivered += 1;
                // If this id was an exported claim, tell its source shard
                // to retire it via the next cycle's verdict bitmap.
                let (g, src, idx) = attr[id];
                if g == gen {
                    verdict_bits[src as usize][idx as usize / 64] |= 1 << (idx % 64);
                }
            }
            links.stats.shard_down_ns[s] += down_ns;
        }
        if cycle_delivered == 0 {
            return Err(ShardError::NoProgress { cycle: cycles });
        }
        if R::ENABLED {
            rec.cycle_end(cycles as u32, cycle_delivered as u32);
            rec.shard_cycle(
                cycles as u32,
                links.stats.barrier_wait_ns - barrier_before,
                merge_ns,
                top_ns,
            );
        }
        cycles += 1;
        delivered_per_cycle.push(cycle_delivered);
        total_ticks += ticks as u64;
        // FIFO compaction in pending order — the delivery_order grouping
        // matches the single arena's emit loop exactly — then the next
        // cycle's per-shard id remaps fall out of the surviving positions.
        let mut w = 0usize;
        for i in 0..mirror.len() {
            if delivered[i] {
                delivery_order.push(mirror[i] as usize);
            } else {
                mirror[w] = mirror[i];
                w += 1;
            }
        }
        mirror.truncate(w);
        for r in &mut remap {
            r.clear();
        }
        for (i, &orig) in mirror.iter().enumerate() {
            remap[shard_of[orig as usize] as usize].push(i as u32);
        }
        // The next iteration's Cycle dispatch happens immediately — the
        // workers' up passes for cycle c+1 overlap this loop's bookkeeping
        // and each other.
    }
    // Best-effort shutdown: a shard that dies here changes nothing about
    // the completed run.
    'shutdown: {
        for s in 0..shards {
            if links
                .request(s, FrameKind::Shutdown, ReplyTag::ShutdownAck, |_| {})
                .is_err()
            {
                break 'shutdown;
            }
        }
        for _ in 0..shards {
            if links.poll().is_err() {
                break 'shutdown;
            }
        }
    }
    Ok(ShardRunReport {
        run: RunReport {
            cycles,
            delivered_per_cycle,
            total_ticks,
            delivery_order,
        },
        stats: links.stats,
    })
}
