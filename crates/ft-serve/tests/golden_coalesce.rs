//! Golden byte-identity tests for request coalescing: every response
//! frame a coalesced batch produces must be word-for-word identical to
//! the frame a solo (one-request) run produces for the same request —
//! across batch sizes, admission interleavings, engines, and degenerate
//! workloads (locals-only, empty, duplicated requests).
//!
//! This is the load-bearing property of `ftsim serve`: clients cannot
//! tell whether their request shared an arena pass with seven strangers
//! or ran alone.

use ft_core::rng::SplitMix64;
use ft_core::{FatTree, Message};
use ft_sched::online::OnlineArena;
use ft_sched::SchedArena;
use ft_serve::core::{solo_online_frame, solo_schedule_frame, BatchBuf};
use ft_serve::proto::{Engine, ReqView};
use ft_serve::ServeCompute;
use ft_telemetry::NoopRecorder;

const N: u32 = 64;
const W: u64 = 16;
const SLOTS: u32 = 8;

/// One request's worth of workload, owned so ReqViews can borrow it.
#[derive(Clone)]
struct Req {
    engine: Engine,
    req_id: u64,
    seed: u64,
    packed: Vec<u64>,
}

impl Req {
    fn view(&self) -> ReqView<'_> {
        ReqView {
            req_id: self.req_id,
            engine: self.engine,
            seed: self.seed,
            msgs: &self.packed,
        }
    }

    fn msgs(&self) -> Vec<Message> {
        self.packed
            .iter()
            .map(|&w| Message::new((w >> 32) as u32, w as u32))
            .collect()
    }
}

fn random_req(engine: Engine, seed: u64, count: usize) -> Req {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let packed = (0..count)
        .map(|_| {
            let src = rng.next_u64() % N as u64;
            let dst = rng.next_u64() % N as u64;
            src << 32 | dst
        })
        .collect();
    Req {
        engine,
        req_id: seed,
        seed,
        packed,
    }
}

fn hotspot_req(engine: Engine, seed: u64) -> Req {
    // Everyone talks to leaf 0: maximal root contention, many cycles.
    let packed = (1..N as u64).map(|src| src << 32).collect();
    Req {
        engine,
        req_id: seed,
        seed,
        packed,
    }
}

fn locals_req(engine: Engine, seed: u64) -> Req {
    let packed = (0..N as u64).step_by(3).map(|p| p << 32 | p).collect();
    Req {
        engine,
        req_id: seed,
        seed,
        packed,
    }
}

fn empty_req(engine: Engine, seed: u64) -> Req {
    Req {
        engine,
        req_id: seed,
        seed,
        packed: Vec::new(),
    }
}

/// Coalesce `reqs` (in the given admission order) through one
/// ServeCompute pass and return each request's encoded `Resp` frame, in
/// admission order. conn/seq are synthesized from the admission index.
fn serve_frames(compute: &mut ServeCompute, reqs: &[&Req]) -> Vec<Vec<u64>> {
    let mut b = BatchBuf::new();
    for (i, r) in reqs.iter().enumerate() {
        assert!(b.has_room(r.engine, SLOTS), "batch overfull at {i}");
        b.admit(1 + i as u16, i as u32, &r.view(), N)
            .expect("admit golden request");
    }
    compute.run(&mut b, &mut NoopRecorder);
    b.encode_responses();
    let frames: Vec<Vec<u64>> = b.spans().iter().map(|s| b.frame(s).to_vec()).collect();
    assert_eq!(frames.len(), reqs.len(), "one Resp frame per request");
    frames
}

/// The solo oracle for request `r` served as admission index `i`.
fn solo_frame(oracle: &mut Oracle, r: &Req, i: usize) -> Vec<u64> {
    let msgs = r.msgs();
    let mut out = Vec::new();
    match r.engine {
        Engine::Schedule => solo_schedule_frame(
            &oracle.ft,
            &mut oracle.sched,
            &msgs,
            1 + i as u16,
            i as u32,
            r.req_id,
            &mut oracle.scratch,
            &mut out,
        ),
        Engine::Online => solo_online_frame(
            &oracle.ft,
            &mut oracle.online,
            &msgs,
            r.seed,
            1 + i as u16,
            i as u32,
            r.req_id,
            &mut out,
        ),
    }
    out
}

struct Oracle {
    ft: FatTree,
    sched: SchedArena,
    online: OnlineArena,
    scratch: Vec<u32>,
}

impl Oracle {
    fn new() -> Self {
        let ft = FatTree::universal(N, W);
        Oracle {
            sched: SchedArena::new(&ft),
            online: OnlineArena::new(&ft),
            ft,
            scratch: Vec::new(),
        }
    }
}

fn assert_batch_matches_solo(compute: &mut ServeCompute, oracle: &mut Oracle, reqs: &[&Req]) {
    let served = serve_frames(compute, reqs);
    for (i, (frame, r)) in served.iter().zip(reqs).enumerate() {
        let want = solo_frame(oracle, r, i);
        assert_eq!(
            frame,
            &want,
            "request {i} ({:?}, {} msgs) diverged from its solo run in a \
             batch of {}",
            r.engine,
            r.packed.len(),
            reqs.len()
        );
    }
}

#[test]
fn coalesced_schedule_batches_match_solo_across_sizes() {
    let mut compute = ServeCompute::new(N, W, SLOTS);
    let mut oracle = Oracle::new();
    let pool: Vec<Req> = (0..8)
        .map(|i| random_req(Engine::Schedule, 1000 + i, 32 + 7 * i as usize))
        .collect();
    for size in [1usize, 2, 4, 8] {
        let batch: Vec<&Req> = pool.iter().take(size).collect();
        assert_batch_matches_solo(&mut compute, &mut oracle, &batch);
    }
}

#[test]
fn admission_order_does_not_change_any_response() {
    let mut compute = ServeCompute::new(N, W, SLOTS);
    let mut oracle = Oracle::new();
    let a = random_req(Engine::Schedule, 7, 48);
    let b = hotspot_req(Engine::Schedule, 8);
    let c = random_req(Engine::Schedule, 9, 5);
    let d = locals_req(Engine::Schedule, 10);
    let orders: [[&Req; 4]; 3] = [[&a, &b, &c, &d], [&d, &c, &b, &a], [&b, &d, &a, &c]];
    for order in &orders {
        assert_batch_matches_solo(&mut compute, &mut oracle, order);
    }
}

#[test]
fn degenerate_requests_survive_coalescing() {
    let mut compute = ServeCompute::new(N, W, SLOTS);
    let mut oracle = Oracle::new();
    let empty = empty_req(Engine::Schedule, 20);
    let locals = locals_req(Engine::Schedule, 21);
    let busy = hotspot_req(Engine::Schedule, 22);
    let single = random_req(Engine::Schedule, 23, 1);
    // Degenerates sandwiched between heavy requests, and alone.
    assert_batch_matches_solo(
        &mut compute,
        &mut oracle,
        &[&busy, &empty, &locals, &single],
    );
    assert_batch_matches_solo(&mut compute, &mut oracle, &[&empty]);
    assert_batch_matches_solo(&mut compute, &mut oracle, &[&locals]);
    assert_batch_matches_solo(&mut compute, &mut oracle, &[&empty, &locals]);
}

#[test]
fn duplicate_requests_get_identical_payloads() {
    let mut compute = ServeCompute::new(N, W, SLOTS);
    let mut oracle = Oracle::new();
    let r = random_req(Engine::Schedule, 33, 40);
    let reqs = [&r, &r, &r, &r];
    let served = serve_frames(&mut compute, &reqs);
    for (i, frame) in served.iter().enumerate() {
        let want = solo_frame(&mut oracle, &r, i);
        assert_eq!(frame, &want, "duplicate copy {i} diverged from solo");
    }
    // Same request, same payload: frames differ only in conn/seq header.
    let payload = |f: &[u64]| f[2..f.len() - 1].to_vec();
    for f in &served[1..] {
        assert_eq!(payload(f), payload(&served[0]));
    }
}

#[test]
fn mixed_engine_batches_match_solo() {
    let mut compute = ServeCompute::new(N, W, SLOTS);
    let mut oracle = Oracle::new();
    let s1 = random_req(Engine::Schedule, 50, 30);
    let o1 = random_req(Engine::Online, 51, 30);
    let s2 = hotspot_req(Engine::Schedule, 52);
    let o2 = random_req(Engine::Online, 53, 12);
    let o3 = locals_req(Engine::Online, 54);
    assert_batch_matches_solo(&mut compute, &mut oracle, &[&s1, &o1, &s2, &o2, &o3]);
    // Online-only batch (no schedule pass at all).
    assert_batch_matches_solo(&mut compute, &mut oracle, &[&o1, &o2]);
}

#[test]
fn repeated_batches_reuse_warm_arenas_correctly() {
    // The same compute instance serves many batches back to back; pooled
    // state from one batch must never leak into the next.
    let mut compute = ServeCompute::new(N, W, SLOTS);
    let mut oracle = Oracle::new();
    for round in 0..6u64 {
        let reqs: Vec<Req> = (0..4)
            .map(|i| random_req(Engine::Schedule, 100 * round + i, 24))
            .collect();
        let batch: Vec<&Req> = reqs.iter().collect();
        assert_batch_matches_solo(&mut compute, &mut oracle, &batch);
    }
}
