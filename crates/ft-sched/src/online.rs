//! On-line randomized routing (§VI): the paper's stated extension, due to
//! Greenberg & Leiserson ("Randomized routing on fat-trees", FOCS 1985,
//! cited as \[8\]): all messages are delivered in O(λ(M) + lg n·lg lg n)
//! delivery cycles with high probability.
//!
//! We model the on-line process at delivery-cycle granularity, exactly as
//! §II describes the hardware: every undelivered message is (re)sent each
//! cycle; it claims one wire on every channel of its path in turn; when a
//! concentrator's output channel is congested (no wire left) the message is
//! dropped *at that point* — the wires it already claimed stay consumed for
//! the cycle, mirroring a partially-established bit-serial path; delivered
//! messages are acknowledged and retire. Random arbitration order per cycle
//! stands in for the random priorities of the Greenberg–Leiserson switch.
//!
//! # Engine structure
//!
//! The process runs on [`OnlineArena`], a flat reusable-buffer engine in the
//! mold of `ft_sim::SimArena` / [`crate::arena::SchedArena`]:
//!
//! * each message's path metadata (source leaf, destination leaf, LCA depth)
//!   is packed into one u64 up front — LCA depth is a single
//!   `xor`/`leading_zeros` on the leaf ids — and the *alive list is the
//!   packed metadata itself* (`Vec<u64>`), compacted in place: the per-cycle
//!   claim walk reads one sequential word per message, with no index
//!   indirection, no LCA recomputation, and no down-run stack (the node at
//!   depth `d` on the down run is just `dleaf >> (height − d)`). Shuffling
//!   it consumes *exactly* the same `SplitMix64` stream as shuffling the
//!   reference's `Vec<Message>` (Fisher–Yates depends only on the length),
//!   so outcomes are byte-identical to
//!   [`crate::reference::route_online_reference`];
//! * the per-cycle used-wire table is split by level and direction into
//!   *compact remaining-wire counters*: u32 slots for any level whose
//!   capacity exceeds `u16::MAX` (none, on simulable trees) and u16 slots
//!   below, holding wires *left* so a probe is load / test-zero / decrement
//!   with no capacity lookup. The u16 tables for a 4096-leaf universal tree
//!   total ~32 KiB and stay cache-resident across a cycle's random probes —
//!   the dominant cost of both engines — where the clone-based engine
//!   allocates and zeroes a 4n-word `LoadMap` every cycle; resetting them
//!   is a template `copy_from_slice` of cycle-start capacities, and indices
//!   are masked to the power-of-two table lengths (over slices cut to
//!   `mask + 1`), which lets the compiler drop every per-probe bounds
//!   check;
//! * the claim walk exits at the first full channel — the lowest saturated
//!   level on the path rejects the message immediately (on capacity-1 leaf
//!   channels that is the very first probe), where the reference walks the
//!   whole path with a dead closure;
//! * with [`OnlineConfig::threads`] > 1 claiming fans out over scoped
//!   threads in three barrier-separated phases (see `threaded_cycle`), again
//!   byte-identical for any thread count.
//!
//! Contention instrumentation reports through the [`Recorder`] trait from
//! ft-telemetry: [`OnlineArena::run_with`] is monomorphized over the
//! recorder type, the cycle engines dispatch on the compile-time
//! [`Recorder::ENABLED`] constant to separate counted / fast claim kernels
//! (exactly the old `const COUNT: bool` scheme), and per-(cycle, level)
//! claimed / blocked / wasted aggregates are fed to
//! [`Recorder::wire_claims`] from the main thread between cycles — so a
//! [`NoopRecorder`] run carries zero instrumentation cost and is
//! byte-identical to the untraced engine.
//!
//! Once warmed, a steady-state serial [`OnlineArena::run`] performs **zero
//! heap allocation** (asserted by `tests/alloc_online.rs`).

use ft_core::rng::SplitMix64;
use ft_core::{FatTree, GenTable, MessageSet, MessageStream};
use ft_telemetry::{NoopRecorder, Recorder};
use std::sync::atomic::{AtomicU8, Ordering};

/// Configuration for the on-line routing process.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineConfig {
    /// Safety valve: stop after this many delivery cycles even if messages
    /// remain (0 disables the valve). The process always terminates —
    /// at least one message is delivered each cycle — but runaway parameters
    /// are easier to debug with a valve.
    pub max_cycles: usize,
    /// Worker threads for the claim fan-out (0 and 1 both mean serial).
    /// Any thread count produces byte-identical results.
    pub threads: usize,
}

/// Internal per-level contention scratch, indexed by channel level
/// (1 = root edges … `height` = leaf edges; index 0 is unused).
///
/// `claimed[l]` counts granted wire claims (including claims by messages
/// blocked later the same cycle — the wires stayed consumed), `blocked[l]`
/// counts rejected claim attempts (one per failed message per cycle, at the
/// level that dropped it), and `wasted[l]` counts grants that went to waste
/// because the claiming message was blocked further along its path. The
/// arena accumulates here (and in per-worker twins that drain into it) and
/// reports per-cycle deltas through [`Recorder::wire_claims`]; the public
/// mechanism is `ft_telemetry::MetricsRecorder`, not this struct.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct OnlineCounters {
    pub(crate) claimed: Vec<u64>,
    pub(crate) blocked: Vec<u64>,
    pub(crate) wasted: Vec<u64>,
}

impl OnlineCounters {
    fn reset(&mut self, height: u32, on: bool) {
        let len = if on { height as usize + 1 } else { 0 };
        for v in [&mut self.claimed, &mut self.blocked, &mut self.wasted] {
            v.clear();
            v.resize(len, 0);
        }
    }

    fn drain_into(&mut self, dst: &mut OnlineCounters) {
        for (d, s) in dst.claimed.iter_mut().zip(&mut self.claimed) {
            *d += std::mem::take(s);
        }
        for (d, s) in dst.blocked.iter_mut().zip(&mut self.blocked) {
            *d += std::mem::take(s);
        }
        for (d, s) in dst.wasted.iter_mut().zip(&mut self.wasted) {
            *d += std::mem::take(s);
        }
    }
}

/// Outcome of the on-line routing process.
#[derive(Clone, Debug)]
pub struct OnlineResult {
    /// Number of delivery cycles used to deliver every message.
    pub cycles: usize,
    /// Messages delivered in each cycle.
    pub delivered_per_cycle: Vec<usize>,
    /// True if the safety valve tripped before completion.
    pub truncated: bool,
}

impl OnlineResult {
    /// Total messages delivered.
    pub fn total_delivered(&self) -> usize {
        self.delivered_per_cycle.iter().sum()
    }
}

/// Run the on-line delivery-cycle process for message set `m` on `ft`.
///
/// One-shot convenience over [`OnlineArena`]; callers running many trials
/// should hold an arena and call [`OnlineArena::route`] (or the allocation-
/// free [`OnlineArena::run`]) to reuse its buffers.
pub fn route_online(
    ft: &FatTree,
    m: &MessageSet,
    rng: &mut SplitMix64,
    config: OnlineConfig,
) -> OnlineResult {
    OnlineArena::new(ft).route(ft, m, rng, config)
}

// Per-message path metadata packed into one u64: bits 0..28 source leaf,
// bits 28..56 destination leaf, bits 56..62 LCA depth. 28-bit leaf fields
// cap the engine at 2^26 processors, like the other flat engines.
#[inline]
fn pack(sleaf: u32, dleaf: u32, lca_depth: u32) -> u64 {
    sleaf as u64 | (dleaf as u64) << 28 | (lca_depth as u64) << 56
}

#[inline]
fn unpack(m: u64) -> (u32, u32, u32) {
    (
        m as u32 & 0x0FFF_FFFF,
        (m >> 28) as u32 & 0x0FFF_FFFF,
        (m >> 56) as u32,
    )
}

// Per-message phase flags for the threaded claim fan-out.
const DEAD: u8 = 0;
const UP_OK: u8 = 1;
const TOP_OK: u8 = 2;
const DELIVERED: u8 = 3;

/// Per-worker scratch for the threaded phases: a private generation-stamped
/// claim table over the worker's subtree edges plus private counters, so
/// phases share nothing but the read-only inputs and the atomic flags.
#[derive(Default)]
struct OnlineWorker {
    tbl: GenTable,
    cnt: OnlineCounters,
}

/// Reusable scratch for the on-line routing process.
///
/// Construct once per tree and feed it any number of runs; every buffer is
/// grow-only. See the module docs for the engine design and
/// `DESIGN.md` §"Flat-engine arenas" for the parallel-schedule argument.
pub struct OnlineArena {
    n: u32,
    height: u32,
    /// Channel capacity per level (level 0 unused).
    caps: Vec<u64>,
    /// First node id whose level uses the byte counters: node `u` sits at
    /// level `lg u`, so `u >= usplit` is exactly "level ≥ `lsplit`", the
    /// shallowest level from which every capacity fits a byte.
    usplit: u32,
    /// Packed path metadata of the still-undelivered messages, in the
    /// current cycle's shuffled order; compacted in place after each cycle.
    alive: Vec<u64>,
    /// Per-cycle *remaining-wire* counters, one slot per directed channel,
    /// indexed directly by heap node id: byte slots (tables of length 2n)
    /// for nodes ≥ `usplit`, exact u32 slots (tables of length `usplit`)
    /// for the wide top levels. Each slot starts a cycle at its channel's
    /// capacity (copied from `init16`/`init32`) and counts down; a claim is
    /// "load, test-zero, decrement" with no capacity lookup, and the level
    /// is recomputed from the node id only on the rare block path.
    /// Power-of-two lengths let the hot probes index through `u & mask`,
    /// which the compiler proves in-bounds — no per-probe bounds check, no
    /// `unsafe`.
    up16: Vec<u16>,
    down16: Vec<u16>,
    up32: Vec<u32>,
    down32: Vec<u32>,
    /// Per-node capacity templates restored into the four tables at cycle
    /// start (both directions share one template per width).
    init16: Vec<u16>,
    init32: Vec<u32>,
    /// `2n − 1` (byte tables) and `usplit − 1` (wide tables).
    mask16: u32,
    mask32: u32,
    /// Main counters (serial path + root-crossing pass + worker merge).
    cnt: OnlineCounters,
    /// Snapshot of `cnt` at the previous cycle boundary, so the recorder is
    /// fed per-(cycle, level) deltas.
    prev: OnlineCounters,
    // --- threaded-phase scratch ---
    workers: Vec<OnlineWorker>,
    flags: Vec<AtomicU8>,
    src_off: Vec<u32>,
    dst_off: Vec<u32>,
    cursor: Vec<u32>,
    src_list: Vec<u32>,
    dst_list: Vec<u32>,
    cross_list: Vec<u32>,
    // --- outputs ---
    delivered_per_cycle: Vec<usize>,
    truncated: bool,
}

impl OnlineArena {
    /// Scratch sized for `ft`.
    pub fn new(ft: &FatTree) -> Self {
        assert!(
            ft.height() <= 26,
            "flat engine supports up to 2^26 processors"
        );
        let height = ft.height();
        let caps: Vec<u64> = (0..=height).map(|k| ft.cap_at_level(k)).collect();
        // Shallowest level from which every deeper capacity fits a byte
        // (capacities need not be monotone, so scan the whole suffix).
        let mut lsplit = height + 1;
        while lsplit > 1 && caps[lsplit as usize - 1] <= u16::MAX as u64 {
            lsplit -= 1;
        }
        let usplit = 1u32 << lsplit;
        let nodes = 2 * ft.n(); // heap node ids are 1..2n; 1 is the root
                                // Narrow tables are allocated full-length even when every level is
                                // wide, so `len == mask + 1` holds unconditionally — the claim
                                // kernels re-slice on that identity to drop per-probe bounds checks.
        let narrow = nodes as usize;
        let wide = usplit.min(nodes) as usize;
        let mut cap16 = [0u16; 32];
        for (l, &c) in caps.iter().enumerate() {
            cap16[l] = c.min(u16::MAX as u64) as u16;
        }
        let mut init16 = vec![0u16; narrow];
        for u in usplit..nodes {
            init16[u as usize] = cap16[(31 - u.leading_zeros()) as usize];
        }
        // Clamping a wide capacity to u32::MAX is exact in effect: a channel
        // receives fewer than 2^32 claims per cycle, so the counter can
        // never run down to zero — exactly "never full".
        let mut init32 = vec![0u32; wide];
        for u in 2..usplit.min(nodes) {
            init32[u as usize] =
                caps[(31 - u.leading_zeros()) as usize].min(u32::MAX as u64) as u32;
        }
        OnlineArena {
            n: ft.n(),
            height,
            caps,
            usplit,
            alive: Vec::new(),
            up16: init16.clone(),
            down16: init16.clone(),
            up32: init32.clone(),
            down32: init32.clone(),
            init16,
            init32,
            mask16: nodes - 1,
            mask32: usplit.min(nodes) - 1,
            cnt: OnlineCounters::default(),
            prev: OnlineCounters::default(),
            workers: Vec::new(),
            flags: Vec::new(),
            src_off: Vec::new(),
            dst_off: Vec::new(),
            cursor: Vec::new(),
            src_list: Vec::new(),
            dst_list: Vec::new(),
            cross_list: Vec::new(),
            delivered_per_cycle: Vec::new(),
            truncated: false,
        }
    }

    /// Delivery cycles used by the last run (0 before any run).
    pub fn cycles(&self) -> usize {
        self.delivered_per_cycle.len()
    }

    /// Messages delivered per cycle in the last run.
    pub fn delivered_per_cycle(&self) -> &[usize] {
        &self.delivered_per_cycle
    }

    /// Did the last run trip the safety valve?
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Total messages delivered in the last run.
    pub fn total_delivered(&self) -> usize {
        self.delivered_per_cycle.iter().sum()
    }

    /// Run the process and clone the outcome into an [`OnlineResult`].
    pub fn route(
        &mut self,
        ft: &FatTree,
        m: &MessageSet,
        rng: &mut SplitMix64,
        config: OnlineConfig,
    ) -> OnlineResult {
        self.route_with(ft, m, rng, config, &mut NoopRecorder)
    }

    /// [`Self::route`] with a telemetry [`Recorder`] observing the run.
    pub fn route_with<R: Recorder>(
        &mut self,
        ft: &FatTree,
        m: &MessageSet,
        rng: &mut SplitMix64,
        config: OnlineConfig,
        rec: &mut R,
    ) -> OnlineResult {
        self.run_with(ft, m, rng, config, rec);
        OnlineResult {
            cycles: self.cycles(),
            delivered_per_cycle: self.delivered_per_cycle.clone(),
            truncated: self.truncated,
        }
    }

    /// Run the process, leaving the outcome readable through the accessors
    /// until the next call. Once warm, the serial path allocates nothing.
    pub fn run(
        &mut self,
        ft: &FatTree,
        m: &MessageSet,
        rng: &mut SplitMix64,
        config: OnlineConfig,
    ) {
        self.run_with(ft, m, rng, config, &mut NoopRecorder)
    }

    /// [`Self::run`] with a telemetry [`Recorder`] observing the run.
    ///
    /// The engine is monomorphized over the recorder type: with
    /// [`NoopRecorder`] (`R::ENABLED == false`) every instrumentation site
    /// compiles out and the run is instruction-identical to [`Self::run`];
    /// with `R::ENABLED` the counted claim kernels attribute every grant /
    /// rejection / wasted grant to its level and the recorder receives
    /// [`Recorder::cycle_start`] / [`Recorder::cycle_end`] per delivery
    /// cycle plus [`Recorder::wire_claims`] per-(cycle, level) aggregates —
    /// called from the main thread between cycles, never from the claim
    /// kernels or worker threads, so the hot path stays untouched and a
    /// warmed `MetricsRecorder` adds no steady-state allocation.
    pub fn run_with<R: Recorder>(
        &mut self,
        ft: &FatTree,
        m: &MessageSet,
        rng: &mut SplitMix64,
        config: OnlineConfig,
        rec: &mut R,
    ) {
        self.run_src(ft, m, rng, config, rec)
    }

    /// Run the process on a lazy [`MessageStream`] without materializing it:
    /// path metadata is packed in one generator pass straight into the alive
    /// list, so no `Vec<Message>` of the stream's length ever exists here.
    /// Byte-identical to [`Self::run`] on `stream.collect_set()` — the alive
    /// list and hence the Fisher–Yates stream are the same either way.
    pub fn run_stream(
        &mut self,
        ft: &FatTree,
        stream: &dyn MessageStream,
        rng: &mut SplitMix64,
        config: OnlineConfig,
    ) {
        self.run_stream_with(ft, stream, rng, config, &mut NoopRecorder)
    }

    /// [`Self::run_stream`] with a telemetry [`Recorder`] observing the run.
    pub fn run_stream_with<R: Recorder>(
        &mut self,
        ft: &FatTree,
        stream: &dyn MessageStream,
        rng: &mut SplitMix64,
        config: OnlineConfig,
        rec: &mut R,
    ) {
        if R::ENABLED {
            rec.stream_ingest(stream.family(), stream.len() as u64);
        }
        self.run_src(ft, stream, rng, config, rec)
    }

    /// The engine body, generic over the message source: `MessageSet` runs
    /// statically dispatched (the classic path is unchanged instruction for
    /// instruction), streams replay their generator for the single packing
    /// pass.
    fn run_src<S: MessageStream + ?Sized, R: Recorder>(
        &mut self,
        ft: &FatTree,
        m: &S,
        rng: &mut SplitMix64,
        config: OnlineConfig,
        rec: &mut R,
    ) {
        debug_assert_eq!(self.n, ft.n(), "arena built for a different tree");
        let height = self.height;
        self.cnt.reset(height, R::ENABLED);
        self.prev.reset(height, R::ENABLED);
        if R::ENABLED {
            rec.run_start(height);
        }

        // Pack path metadata once; locals never touch the network. The LCA
        // depth falls out of the leaf ids without walking the tree: the
        // leaves agree on their top `height − bitlen(sleaf ^ dleaf)` levels.
        self.alive.clear();
        let mut locals = 0usize;
        for j in 0..m.len() {
            let msg = m.message(j);
            if msg.is_local() {
                locals += 1;
                continue;
            }
            let (sleaf, dleaf) = (ft.leaf(msg.src), ft.leaf(msg.dst));
            let lca_d = height - (u32::BITS - (sleaf ^ dleaf).leading_zeros());
            debug_assert_eq!(lca_d, 31 - ft.lca(msg.src, msg.dst).leading_zeros());
            self.alive.push(pack(sleaf, dleaf, lca_d));
        }
        self.delivered_per_cycle.clear();
        self.truncated = false;

        // Bucket depth for the threaded fan-out: 2^ell subtrees, enough for
        // one per thread. 0 selects the serial path (also when the tree is
        // too shallow to split).
        let threads = config.threads.max(1);
        let ell = if threads <= 1 || height < 2 {
            0
        } else {
            (u32::BITS - (threads as u32 - 1).leading_zeros()).clamp(1, height - 1)
        };

        while !self.alive.is_empty() {
            if config.max_cycles != 0 && self.delivered_per_cycle.len() >= config.max_cycles {
                self.truncated = true;
                break;
            }
            let cycle = self.delivered_per_cycle.len() as u32;
            if R::ENABLED {
                // Locals retire alongside the first cycle (see below), so
                // the recorder's view matches `delivered_per_cycle`.
                let extra = if cycle == 0 { locals } else { 0 };
                rec.cycle_start(cycle, (self.alive.len() + extra) as u32);
            }
            // Shuffling the packed-meta list consumes the identical
            // SplitMix64 stream as the reference's shuffle of its
            // Vec<Message>: Fisher–Yates depends only on the slice length.
            rng.shuffle(&mut self.alive);
            let delivered = match (ell, R::ENABLED) {
                (0, false) => self.serial_cycle::<false>(),
                (0, true) => self.serial_cycle::<true>(),
                (_, false) => self.threaded_cycle::<false>(ell, threads),
                (_, true) => self.threaded_cycle::<true>(ell, threads),
            };
            // Progress guarantee: the first message in the shuffled order
            // always claims an empty network.
            debug_assert!(delivered > 0);
            self.delivered_per_cycle.push(delivered);
            if R::ENABLED {
                for lvl in 1..=height as usize {
                    let dc = self.cnt.claimed[lvl] - self.prev.claimed[lvl];
                    let db = self.cnt.blocked[lvl] - self.prev.blocked[lvl];
                    let dw = self.cnt.wasted[lvl] - self.prev.wasted[lvl];
                    if dc | db | dw != 0 {
                        rec.wire_claims(cycle, lvl as u32, dc, db, dw);
                    }
                    self.prev.claimed[lvl] = self.cnt.claimed[lvl];
                    self.prev.blocked[lvl] = self.cnt.blocked[lvl];
                    self.prev.wasted[lvl] = self.cnt.wasted[lvl];
                }
                let extra = if cycle == 0 { locals } else { 0 };
                rec.cycle_end(cycle, (delivered + extra) as u32);
            }
        }

        // Local messages are "delivered" in cycle 1 without using the
        // network.
        if locals > 0 {
            if self.delivered_per_cycle.is_empty() {
                self.delivered_per_cycle.push(locals);
                if R::ENABLED {
                    rec.cycle_start(0, locals as u32);
                    rec.cycle_end(0, locals as u32);
                }
            } else {
                self.delivered_per_cycle[0] += locals;
            }
        }
    }

    /// One serial delivery cycle: walk the shuffled alive list, claim each
    /// message's path with first-full-channel early exit, compact survivors
    /// in place. Returns the number delivered.
    fn serial_cycle<const COUNT: bool>(&mut self) -> usize {
        let height = self.height;
        let usplit = self.usplit;
        let (mask16, mask32) = (self.mask16, self.mask32);
        let OnlineArena {
            alive,
            up16,
            down16,
            up32,
            down32,
            init16,
            init32,
            cnt,
            ..
        } = self;
        // A few-KiB template copy stands in for the reference's per-cycle
        // 4n-word LoadMap allocation + zero.
        up16.copy_from_slice(init16);
        down16.copy_from_slice(init16);
        up32.copy_from_slice(init32);
        down32.copy_from_slice(init32);
        // Identity re-slices that put `len == mask + 1` in the compiler's
        // view: with it, `idx = node & mask < len` is provable and the
        // per-probe bounds checks vanish from the claim kernels.
        let up16 = &mut up16[..mask16 as usize + 1];
        let down16 = &mut down16[..mask16 as usize + 1];
        let up32 = &mut up32[..mask32 as usize + 1];
        let down32 = &mut down32[..mask32 as usize + 1];

        // Branchless stable compaction: always write the survivor slot and
        // advance the cursor only on failure. The write is in-bounds and
        // order-preserving because `w <= k`; a "delivered or not" branch
        // here would be data-random in congested cycles and mispredict
        // roughly every other message.
        let mut w = 0usize;
        for k in 0..alive.len() {
            let mv = alive[k];
            let ok = if COUNT {
                try_claim_counted(
                    up16, down16, up32, down32, usplit, mask16, mask32, height, cnt, mv,
                )
            } else {
                try_claim_fast(
                    up16, down16, up32, down32, usplit, mask16, mask32, height, mv,
                )
            };
            alive[w] = mv;
            w += !ok as usize;
        }
        let delivered = alive.len() - w;
        alive.truncate(w);
        delivered
    }

    /// One threaded delivery cycle, byte-identical to [`Self::serial_cycle`]
    /// for any thread count.
    ///
    /// Messages are bucketed by their depth-`ell` subtree. A message whose
    /// LCA lies at depth ≥ `ell` ("inside") touches only channels strictly
    /// inside its bucket; a "root-crosser" (LCA depth < `ell`) touches its
    /// source bucket below depth `ell` going up, the shared top segment,
    /// and its destination bucket below depth `ell` going down. Claiming
    /// therefore splits into three barrier-separated phases whose channel
    /// sets are pairwise disjoint:
    ///
    /// 1. **Up** (parallel per source bucket): every up-channel claim at
    ///    depth > `ell` — full up-runs for inside messages, up-tails for
    ///    crossers. Up-claims are unconditional path prefixes, so they need
    ///    nothing from other messages' fates.
    /// 2. **Top** (sequential, shuffle order over crossers): claims on the
    ///    depth ≤ `ell` segment, skipping crossers already dead from
    ///    phase 1. Only crossers ever touch these channels.
    /// 3. **Down** (parallel per destination bucket): every down-channel
    ///    claim at depth > `ell`, conditional on the flag settled in
    ///    phase 1 (inside) or phase 2 (crossers).
    ///
    /// Each directed channel is owned by exactly one worker in exactly one
    /// phase, the per-channel attempt order is the shuffle order restricted
    /// to its claimants (counting sort and the crosser filter are stable),
    /// and every attempt's precondition — "did this message survive its
    /// earlier channels?" — is fully resolved before the phase that attempts
    /// it. By induction over (shuffle position, path position), every claim
    /// sees exactly the multiset of prior grants it would see serially, so
    /// outcomes are identical.
    fn threaded_cycle<const COUNT: bool>(&mut self, ell: u32, threads: usize) -> usize {
        let height = self.height;
        let nb = 1usize << ell; // buckets = nodes at depth ell
        let lo = 1u32 << ell; // first bucket node id
        let shift = height - ell;
        let usplit = self.usplit;
        let OnlineArena {
            caps,
            alive,
            up16,
            down16,
            up32,
            down32,
            init16,
            init32,
            cnt,
            workers,
            flags,
            src_off,
            dst_off,
            cursor,
            src_list,
            dst_list,
            cross_list,
            ..
        } = self;
        let caps: &[u64] = caps;
        // The phases read the alive list in place and index their lists and
        // flags by *position* in it; the list itself is compacted only after
        // the last phase.
        let meta: &[u64] = alive;

        if flags.len() < meta.len() {
            flags.resize_with(meta.len(), || AtomicU8::new(0));
        }
        let flags: &[AtomicU8] = flags;

        // Stable counting sort of the shuffled alive list into source and
        // destination buckets, and the crosser sublist, all in shuffle
        // order.
        let total = meta.len();
        src_off.clear();
        src_off.resize(nb + 1, 0);
        dst_off.clear();
        dst_off.resize(nb + 1, 0);
        cross_list.clear();
        for (k, &mv) in meta.iter().enumerate() {
            let (sleaf, dleaf, lca_d) = unpack(mv);
            src_off[((sleaf >> shift) - lo) as usize + 1] += 1;
            dst_off[((dleaf >> shift) - lo) as usize + 1] += 1;
            if lca_d < ell {
                cross_list.push(k as u32);
            }
        }
        for b in 0..nb {
            src_off[b + 1] += src_off[b];
            dst_off[b + 1] += dst_off[b];
        }
        src_list.resize(total, 0);
        dst_list.resize(total, 0);
        cursor.clear();
        cursor.extend_from_slice(&src_off[..nb]);
        for (k, &mv) in meta.iter().enumerate() {
            let b = ((unpack(mv).0 >> shift) - lo) as usize;
            src_list[cursor[b] as usize] = k as u32;
            cursor[b] += 1;
        }
        cursor.clear();
        cursor.extend_from_slice(&dst_off[..nb]);
        for (k, &mv) in meta.iter().enumerate() {
            let b = ((unpack(mv).1 >> shift) - lo) as usize;
            dst_list[cursor[b] as usize] = k as u32;
            cursor[b] += 1;
        }

        let w = threads.min(nb);
        if workers.len() < w {
            workers.resize_with(w, Default::default);
        }
        if COUNT {
            for wk in workers[..w].iter_mut() {
                wk.cnt.reset(height, true);
            }
        }
        let per = nb.div_ceil(w);
        let src_off: &[u32] = src_off;
        let dst_off: &[u32] = dst_off;
        let src_list: &[u32] = src_list;
        let dst_list: &[u32] = dst_list;

        // Phase 1: up-claims inside source buckets.
        std::thread::scope(|sc| {
            for (t, wk) in workers[..w].iter_mut().enumerate() {
                let (k0, k1) = (t * per, ((t + 1) * per).min(nb));
                sc.spawn(move || {
                    wk.phase_up::<COUNT>(
                        k0..k1,
                        lo,
                        ell,
                        height,
                        src_off,
                        src_list,
                        meta,
                        flags,
                        caps,
                    );
                });
            }
        });

        // Phase 2: the sequential root-crossing pass over the top segment,
        // on the shared leveled counters (only levels ≤ ell are touched; the
        // phase-1/3 channels live in the workers' private tables).
        up16.copy_from_slice(init16);
        down16.copy_from_slice(init16);
        up32.copy_from_slice(init32);
        down32.copy_from_slice(init32);
        for &k in cross_list.iter() {
            if flags[k as usize].load(Ordering::Relaxed) != UP_OK {
                continue; // died on its up-tail; flag already DEAD
            }
            let (sleaf, dleaf, lca_d) = unpack(meta[k as usize]);
            let mut ok = true;
            let mut u = sleaf >> shift;
            let mut lvl = ell;
            while lvl > lca_d {
                if !claim_one(up16, up32, usplit, u) {
                    ok = false;
                    if COUNT {
                        cnt.blocked[lvl as usize] += 1;
                        for l in (lvl + 1)..=height {
                            cnt.wasted[l as usize] += 1;
                        }
                    }
                    break;
                }
                if COUNT {
                    cnt.claimed[lvl as usize] += 1;
                }
                u >>= 1;
                lvl -= 1;
            }
            if ok {
                for lvl in (lca_d + 1)..=ell {
                    let v = dleaf >> (height - lvl);
                    if !claim_one(down16, down32, usplit, v) {
                        ok = false;
                        if COUNT {
                            cnt.blocked[lvl as usize] += 1;
                            for l in (lca_d + 1)..=height {
                                cnt.wasted[l as usize] += 1;
                            }
                            for l in (lca_d + 1)..lvl {
                                cnt.wasted[l as usize] += 1;
                            }
                        }
                        break;
                    }
                    if COUNT {
                        cnt.claimed[lvl as usize] += 1;
                    }
                }
            }
            flags[k as usize].store(if ok { TOP_OK } else { DEAD }, Ordering::Relaxed);
        }

        // Phase 3: down-claims inside destination buckets.
        std::thread::scope(|sc| {
            for (t, wk) in workers[..w].iter_mut().enumerate() {
                let (k0, k1) = (t * per, ((t + 1) * per).min(nb));
                sc.spawn(move || {
                    wk.phase_down::<COUNT>(
                        k0..k1,
                        lo,
                        ell,
                        height,
                        dst_off,
                        dst_list,
                        meta,
                        flags,
                        caps,
                    );
                });
            }
        });
        if COUNT {
            for wk in workers[..w].iter_mut() {
                wk.cnt.drain_into(cnt);
            }
        }

        // Finalize: compact the alive list by the settled per-position flags.
        let mut delivered = 0usize;
        let mut wpos = 0usize;
        for k in 0..total {
            if flags[k].load(Ordering::Relaxed) == DELIVERED {
                delivered += 1;
            } else {
                alive[wpos] = alive[k];
                wpos += 1;
            }
        }
        alive.truncate(wpos);
        delivered
    }
}

/// Claim one wire on the directed channel above node `u` in the leveled
/// remaining-wire counter pair, returning false when the channel is full.
#[inline]
fn claim_one(t16: &mut [u16], t32: &mut [u32], usplit: u32, u: u32) -> bool {
    if u >= usplit {
        let slot = &mut t16[u as usize];
        if *slot == 0 {
            return false;
        }
        *slot -= 1;
    } else {
        let slot = &mut t32[u as usize];
        if *slot == 0 {
            return false;
        }
        *slot -= 1;
    }
    true
}

/// Claim the full path of one message on the leveled remaining-wire
/// counters, exiting at the first full channel (earlier claims stay
/// consumed) and attributing every grant/rejection to its level in the
/// contention counters. Returns true if fully delivered. The counters-on
/// serial twin of the three threaded phases.
///
/// A node id at level `l` lies in `[2^l, 2^{l+1})`, so each run splits into
/// a byte-counter segment and a wide-counter segment with a single branch
/// flip, and the loop guards reduce to one node-id compare against a
/// precomputed stop node (up) or one shift-count compare (down). A probe is
/// "load, test-zero, decrement": capacities are baked into the cycle-start
/// counter values. Table indices are masked to the power-of-two table
/// lengths (a no-op on valid node ids), which eliminates the per-probe
/// bounds checks.
#[allow(clippy::too_many_arguments)]
#[inline]
fn try_claim_counted(
    up16: &mut [u16],
    down16: &mut [u16],
    up32: &mut [u32],
    down32: &mut [u32],
    usplit: u32,
    mask16: u32,
    mask32: u32,
    height: u32,
    cnt: &mut OnlineCounters,
    meta: u64,
) -> bool {
    let (sleaf, dleaf, lca_d) = unpack(meta);
    let lca_node = sleaf >> (height - lca_d);

    // Up run: edges at depths height .. lca_d+1, byte segment down to the
    // deeper of the LCA and the wide-table boundary.
    let stop16 = lca_node.max(usplit - 1);
    let mut u = sleaf;
    let mut lvl = height;
    while u > stop16 {
        let slot = &mut up16[(u & mask16) as usize];
        if *slot == 0 {
            cnt.blocked[lvl as usize] += 1;
            for l in (lvl + 1)..=height {
                cnt.wasted[l as usize] += 1;
            }
            return false;
        }
        *slot -= 1;
        cnt.claimed[lvl as usize] += 1;
        lvl -= 1;
        u >>= 1;
    }
    while u > lca_node {
        let slot = &mut up32[(u & mask32) as usize];
        if *slot == 0 {
            cnt.blocked[lvl as usize] += 1;
            for l in (lvl + 1)..=height {
                cnt.wasted[l as usize] += 1;
            }
            return false;
        }
        *slot -= 1;
        cnt.claimed[lvl as usize] += 1;
        lvl -= 1;
        u >>= 1;
    }

    // Down run, top-down: the node at depth d is dleaf >> (height − d), so
    // the shift count s runs from height − lca_d − 1 down to 0, crossing
    // from the wide tables into the byte tables at `v >= usplit`, i.e.
    // s ≤ height − lg usplit (computed in i32: every level may be wide).
    let mut s = height - lca_d;
    let s_split = height as i32 - usplit.trailing_zeros() as i32;
    lvl = lca_d;
    while s as i32 > s_split + 1 {
        s -= 1;
        let v = dleaf >> s;
        let slot = &mut down32[(v & mask32) as usize];
        if *slot == 0 {
            count_down_block(cnt, lca_d, lvl + 1, height);
            return false;
        }
        *slot -= 1;
        lvl += 1;
        cnt.claimed[lvl as usize] += 1;
    }
    while s > 0 {
        s -= 1;
        let v = dleaf >> s;
        let slot = &mut down16[(v & mask16) as usize];
        if *slot == 0 {
            count_down_block(cnt, lca_d, lvl + 1, height);
            return false;
        }
        *slot -= 1;
        lvl += 1;
        cnt.claimed[lvl as usize] += 1;
    }
    true
}

/// Branch-light twin of [`try_claim_counted`] for the counters-off build:
/// the identical early-exit walk with all attribution bookkeeping stripped,
/// so the hot loops carry nothing but the node id and the probe.
#[allow(clippy::too_many_arguments)]
#[inline]
fn try_claim_fast(
    up16: &mut [u16],
    down16: &mut [u16],
    up32: &mut [u32],
    down32: &mut [u32],
    usplit: u32,
    mask16: u32,
    mask32: u32,
    height: u32,
    meta: u64,
) -> bool {
    let (sleaf, dleaf, lca_d) = unpack(meta);
    let lca_node = sleaf >> (height - lca_d);

    let stop16 = lca_node.max(usplit - 1);
    let mut u = sleaf;
    while u > stop16 {
        let slot = &mut up16[(u & mask16) as usize];
        if *slot == 0 {
            return false;
        }
        *slot -= 1;
        u >>= 1;
    }
    while u > lca_node {
        let slot = &mut up32[(u & mask32) as usize];
        if *slot == 0 {
            return false;
        }
        *slot -= 1;
        u >>= 1;
    }

    let mut s = height - lca_d;
    let s_split = height as i32 - usplit.trailing_zeros() as i32;
    while s as i32 > s_split + 1 {
        s -= 1;
        let v = dleaf >> s;
        let slot = &mut down32[(v & mask32) as usize];
        if *slot == 0 {
            return false;
        }
        *slot -= 1;
    }
    while s > 0 {
        s -= 1;
        let v = dleaf >> s;
        let slot = &mut down16[(v & mask16) as usize];
        if *slot == 0 {
            return false;
        }
        *slot -= 1;
    }
    true
}

/// Counter bookkeeping for a message dropped on its down run at `lvl`: its
/// whole up run and the down prefix above `lvl` were claimed in vain.
#[inline]
fn count_down_block(cnt: &mut OnlineCounters, lca_d: u32, lvl: u32, height: u32) {
    cnt.blocked[lvl as usize] += 1;
    for l in (lca_d + 1)..=height {
        cnt.wasted[l as usize] += 1;
    }
    for l in (lca_d + 1)..lvl {
        cnt.wasted[l as usize] += 1;
    }
}

impl OnlineWorker {
    /// Relative index of the edge above node `u` (at depth `lvl`) within the
    /// worker's private per-bucket table: depth layers are laid out
    /// contiguously, `2^j − 2 + (u − bn·2^j)` for `j = lvl − ell`.
    #[inline]
    fn rel(bn: u32, ell: u32, lvl: u32, u: u32) -> usize {
        let j = lvl - ell;
        (u - (bn << j)) as usize + (1usize << j) - 2
    }

    /// Phase 1: claim the up-channels at depths > `ell` for every message
    /// sourced in the owned buckets, in shuffle order, and record survival.
    #[allow(clippy::too_many_arguments)]
    fn phase_up<const COUNT: bool>(
        &mut self,
        buckets: std::ops::Range<usize>,
        lo: u32,
        ell: u32,
        height: u32,
        src_off: &[u32],
        src_list: &[u32],
        meta: &[u64],
        flags: &[AtomicU8],
        caps: &[u64],
    ) {
        let tbl_len = (1usize << (height - ell + 1)) - 2;
        for b in buckets {
            let bn = lo + b as u32;
            // One generation per (phase, bucket): stale claims from other
            // buckets or the previous phase read as zero.
            self.tbl.begin(tbl_len);
            for &i in &src_list[src_off[b] as usize..src_off[b + 1] as usize] {
                let (sleaf, _, lca_d) = unpack(meta[i as usize]);
                let stop = lca_d.max(ell);
                let mut u = sleaf;
                let mut lvl = height;
                let mut ok = true;
                while lvl > stop {
                    if !self
                        .tbl
                        .try_claim(Self::rel(bn, ell, lvl, u), caps[lvl as usize])
                    {
                        ok = false;
                        if COUNT {
                            self.cnt.blocked[lvl as usize] += 1;
                            for l in (lvl + 1)..=height {
                                self.cnt.wasted[l as usize] += 1;
                            }
                        }
                        break;
                    }
                    if COUNT {
                        self.cnt.claimed[lvl as usize] += 1;
                    }
                    u >>= 1;
                    lvl -= 1;
                }
                flags[i as usize].store(if ok { UP_OK } else { DEAD }, Ordering::Relaxed);
            }
        }
    }

    /// Phase 3: claim the down-channels at depths > `ell` for every message
    /// destined in the owned buckets, in shuffle order, conditional on the
    /// flag settled in the earlier phases; record delivery.
    #[allow(clippy::too_many_arguments)]
    fn phase_down<const COUNT: bool>(
        &mut self,
        buckets: std::ops::Range<usize>,
        lo: u32,
        ell: u32,
        height: u32,
        dst_off: &[u32],
        dst_list: &[u32],
        meta: &[u64],
        flags: &[AtomicU8],
        caps: &[u64],
    ) {
        let tbl_len = (1usize << (height - ell + 1)) - 2;
        for b in buckets {
            let bn = lo + b as u32;
            self.tbl.begin(tbl_len);
            for &i in &dst_list[dst_off[b] as usize..dst_off[b + 1] as usize] {
                let (_, dleaf, lca_d) = unpack(meta[i as usize]);
                let need = if lca_d < ell { TOP_OK } else { UP_OK };
                if flags[i as usize].load(Ordering::Relaxed) != need {
                    continue; // blocked earlier; flag is already DEAD
                }
                let start = lca_d.max(ell) + 1;
                let mut ok = true;
                for lvl in start..=height {
                    let v = dleaf >> (height - lvl);
                    if !self
                        .tbl
                        .try_claim(Self::rel(bn, ell, lvl, v), caps[lvl as usize])
                    {
                        ok = false;
                        if COUNT {
                            self.cnt.blocked[lvl as usize] += 1;
                            for l in (lca_d + 1)..=height {
                                self.cnt.wasted[l as usize] += 1;
                            }
                            for l in (lca_d + 1)..lvl {
                                self.cnt.wasted[l as usize] += 1;
                            }
                        }
                        break;
                    }
                    if COUNT {
                        self.cnt.claimed[lvl as usize] += 1;
                    }
                }
                flags[i as usize].store(if ok { DELIVERED } else { DEAD }, Ordering::Relaxed);
            }
        }
    }
}

/// The shape the paper quotes for the on-line bound:
/// `λ(M) + lg n · lg lg n` (unit constants).
pub fn online_bound_shape(ft: &FatTree, load_factor: f64) -> f64 {
    let lgn = ft_core::lg(ft.n() as u64) as f64;
    load_factor.max(1.0) + lgn * lgn.max(2.0).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::route_online_reference;
    use ft_core::{CapacityProfile, Message};

    fn rng() -> SplitMix64 {
        SplitMix64::seed_from_u64(0xFA7EE)
    }

    #[test]
    fn delivers_everything() {
        let n = 64u32;
        let t = FatTree::universal(n, 16);
        let m: MessageSet = (0..n).map(|i| Message::new(i, (i + 31) % n)).collect();
        let res = route_online(&t, &m, &mut rng(), OnlineConfig::default());
        assert!(!res.truncated);
        assert_eq!(res.total_delivered(), m.len());
        assert!(res.cycles >= 1);
    }

    #[test]
    fn one_cycle_set_delivers_in_one_cycle_sometimes_more() {
        // With full-doubling capacities the reversal is a one-cycle set; the
        // online process with congestion-free capacities must finish in 1.
        let n = 32u32;
        let t = FatTree::new(n, CapacityProfile::FullDoubling);
        let m: MessageSet = (0..n).map(|i| Message::new(i, n - 1 - i)).collect();
        let res = route_online(&t, &m, &mut rng(), OnlineConfig::default());
        assert_eq!(
            res.cycles, 1,
            "no congestion possible, must finish in one cycle"
        );
    }

    #[test]
    fn hotspot_takes_about_lambda_cycles() {
        let n = 16u32;
        let t = FatTree::new(n, CapacityProfile::Constant(1));
        let m: MessageSet = (1..n).map(|i| Message::new(i, 0)).collect();
        let res = route_online(&t, &m, &mut rng(), OnlineConfig::default());
        // λ = 15 at the destination leaf channel; exactly one message can
        // finish per cycle.
        assert_eq!(res.cycles, (n - 1) as usize);
    }

    #[test]
    fn local_messages_do_not_block() {
        let t = FatTree::new(8, CapacityProfile::Constant(1));
        let m: MessageSet = (0..8).map(|i| Message::new(i, i)).collect();
        let res = route_online(&t, &m, &mut rng(), OnlineConfig::default());
        assert_eq!(res.cycles, 1);
        assert_eq!(res.total_delivered(), 8);
    }

    #[test]
    fn safety_valve_trips() {
        let n = 16u32;
        let t = FatTree::new(n, CapacityProfile::Constant(1));
        let m: MessageSet = (1..n).map(|i| Message::new(i, 0)).collect();
        let cfg = OnlineConfig {
            max_cycles: 3,
            ..Default::default()
        };
        let res = route_online(&t, &m, &mut rng(), cfg);
        assert!(res.truncated);
        assert_eq!(res.cycles, 3);
    }

    #[test]
    fn within_online_bound_shape_on_random_traffic() {
        let n = 256u32;
        let t = FatTree::universal(n, 64);
        let mut r = rng();
        let m: MessageSet = (0..n).map(|i| Message::new(i, r.gen_range(0..n))).collect();
        let lam = ft_core::load_factor(&t, &m);
        let res = route_online(&t, &m, &mut r, OnlineConfig::default());
        // Generous constant: shape is λ + lg n lg lg n; allow 6×.
        let bound = 6.0 * online_bound_shape(&t, lam);
        assert!(
            (res.cycles as f64) <= bound,
            "online cycles {} vs bound {bound:.1} (λ = {lam:.2})",
            res.cycles
        );
    }

    // --- locals / truncation semantics, pinned for BOTH engines ---
    //
    // The contract: local messages always land in cycle 1 exactly once
    // (appended to an existing first cycle, or as the only cycle when no
    // non-local work exists); `cycles == delivered_per_cycle.len()`; the
    // valve trips — `truncated == true` and `cycles == max_cycles` — if and
    // only if non-local messages remain after `max_cycles > 0` cycles, so an
    // all-local set never counts toward (or against) the valve.

    fn both(
        t: &FatTree,
        m: &MessageSet,
        cfg: OnlineConfig,
        seed: u64,
    ) -> (OnlineResult, OnlineResult) {
        let fast = route_online(t, m, &mut SplitMix64::seed_from_u64(seed), cfg);
        let slow = route_online_reference(t, m, &mut SplitMix64::seed_from_u64(seed), cfg);
        assert_eq!(fast.delivered_per_cycle, slow.delivered_per_cycle);
        assert_eq!(fast.cycles, slow.cycles);
        assert_eq!(fast.truncated, slow.truncated);
        (fast, slow)
    }

    #[test]
    fn all_local_reports_one_untruncated_cycle() {
        let t = FatTree::new(8, CapacityProfile::Constant(1));
        let m: MessageSet = (0..8).map(|i| Message::new(i, i)).collect();
        for max_cycles in [0usize, 1, 5] {
            let cfg = OnlineConfig {
                max_cycles,
                ..Default::default()
            };
            let (res, _) = both(&t, &m, cfg, 11);
            assert_eq!(res.cycles, 1, "max_cycles={max_cycles}");
            assert_eq!(res.delivered_per_cycle, vec![8]);
            assert!(!res.truncated, "locals alone must never trip the valve");
        }
    }

    #[test]
    fn empty_set_routes_in_zero_cycles() {
        let t = FatTree::new(8, CapacityProfile::Constant(1));
        let m = MessageSet::new();
        let (res, _) = both(&t, &m, OnlineConfig::default(), 12);
        assert_eq!(res.cycles, 0);
        assert!(res.delivered_per_cycle.is_empty());
        assert!(!res.truncated);
    }

    #[test]
    fn truncated_first_cycle_counts_locals_exactly_once() {
        let n = 16u32;
        let t = FatTree::new(n, CapacityProfile::Constant(1));
        // Hot spot (one non-local delivery per cycle) plus two locals.
        let mut m: MessageSet = (1..n).map(|i| Message::new(i, 0)).collect();
        m.push(Message::new(3, 3));
        m.push(Message::new(7, 7));
        let cfg = OnlineConfig {
            max_cycles: 1,
            ..Default::default()
        };
        let (res, _) = both(&t, &m, cfg, 13);
        assert!(res.truncated);
        assert_eq!(res.cycles, 1);
        // 1 non-local winner + 2 locals; locals must not be double-counted
        // or spill into a phantom extra cycle.
        assert_eq!(res.delivered_per_cycle, vec![3]);
        assert_eq!(res.total_delivered(), 3);
    }

    #[test]
    fn finishing_exactly_at_the_valve_is_not_truncated() {
        let n = 4u32;
        let t = FatTree::new(n, CapacityProfile::Constant(1));
        let m: MessageSet = (1..n).map(|i| Message::new(i, 0)).collect();
        // The hot spot needs exactly n−1 = 3 cycles; a valve of 3 is not hit.
        let cfg = OnlineConfig {
            max_cycles: 3,
            ..Default::default()
        };
        let (res, _) = both(&t, &m, cfg, 14);
        assert!(!res.truncated, "completing at the valve is not truncation");
        assert_eq!(res.cycles, 3);
        assert_eq!(res.total_delivered(), m.len());
    }

    // --- recorder-fed contention telemetry ---

    #[test]
    fn recorder_counters_balance_with_delivery_accounting() {
        let n = 64u32;
        let t = FatTree::universal(n, 8);
        let mut r = rng();
        let m: MessageSet = (0..2 * n)
            .map(|_| Message::new(r.gen_range(0..n), r.gen_range(0..n)))
            .collect();
        let mut arena = OnlineArena::new(&t);
        let mut rec = ft_telemetry::MetricsRecorder::new();
        let res = arena.route_with(&t, &m, &mut rng(), OnlineConfig::default(), &mut rec);

        // Each undelivered message is blocked exactly once per cycle, so
        // total blocked = Σ_cycles (alive − delivered) = total resends.
        let nonlocal = m.iter().filter(|msg| !msg.is_local()).count();
        let mut alive = nonlocal;
        let mut resends = 0usize;
        for (cyc, &d) in res.delivered_per_cycle.iter().enumerate() {
            let d_nonlocal = if cyc == 0 {
                d - (m.len() - nonlocal)
            } else {
                d
            };
            alive -= d_nonlocal;
            resends += alive;
        }
        assert_eq!(rec.total_blocked(), resends as u64);
        // Wasted claims are a subset of granted claims, level by level.
        for l in 0..rec.claimed.len() {
            assert!(rec.wasted[l] <= rec.claimed[l], "level {l}");
        }
        // Delivered messages account for the non-wasted claims: a delivered
        // message claims one wire at every level of its path.
        let useful: u64 = rec
            .claimed
            .iter()
            .zip(&rec.wasted)
            .map(|(&cl, &wa)| cl - wa)
            .sum();
        assert!(useful > 0);
        assert_eq!(rec.hottest_level().is_some(), rec.total_blocked() > 0);
        // The recorder's per-cycle view (fed by cycle_end, including the
        // locals that retire alongside cycle 1) matches the engine's.
        let per_cycle: Vec<u64> = res.delivered_per_cycle.iter().map(|&d| d as u64).collect();
        assert_eq!(rec.delivered_per_cycle, per_cycle);
        assert_eq!(rec.cycles as usize, res.cycles);
    }

    #[test]
    fn recorder_does_not_change_outcomes() {
        let n = 64u32;
        let t = FatTree::universal(n, 8);
        let mut r = SplitMix64::seed_from_u64(99);
        let m: MessageSet = (0..n).map(|i| Message::new(i, r.gen_range(0..n))).collect();
        let plain = route_online(
            &t,
            &m,
            &mut SplitMix64::seed_from_u64(7),
            OnlineConfig::default(),
        );
        let mut rec = ft_telemetry::MetricsRecorder::new();
        let counted = OnlineArena::new(&t).route_with(
            &t,
            &m,
            &mut SplitMix64::seed_from_u64(7),
            OnlineConfig::default(),
            &mut rec,
        );
        assert_eq!(plain.delivered_per_cycle, counted.delivered_per_cycle);
        assert!(rec.total_claimed() > 0);
    }

    #[test]
    fn hotspot_counters_blame_the_skinny_levels() {
        let n = 16u32;
        let t = FatTree::new(n, CapacityProfile::Constant(1));
        let m: MessageSet = (1..n).map(|i| Message::new(i, 0)).collect();
        let mut rec = ft_telemetry::MetricsRecorder::new();
        OnlineArena::new(&t).run_with(&t, &m, &mut rng(), OnlineConfig::default(), &mut rec);
        assert!(rec.total_blocked() > 0);
        // All-to-one on a unit-capacity tree serializes on the down spine:
        // every rejection is a down-channel collision, never level 0.
        assert_eq!(rec.blocked[0], 0);
        assert_eq!(rec.claimed[0], 0);
    }
}
