//! Pod-aware collective streams for generalized topologies.
//!
//! The collective generators in [`crate::stream`] assume power-of-two
//! processor counts and pod sizes (they work in bit masks). Generalized
//! topologies have whatever pod size their deepest switches give them —
//! `k/2` servers per edge switch in a k-ary tree, `p` per leaf switch in
//! a two-layer design — so these variants run the same ring all-reduce
//! and rotation all-to-all in modular arithmetic over *real* processor
//! ids, with the pod size taken from the topology. Where both apply
//! (power-of-two everything) they generate byte-identical streams to the
//! mask-based originals (pinned by tests below).

use ft_core::{splitmix64, Message, MessageStream};
use ft_topology::Topology;

/// Ring all-reduce over pods of arbitrary size: `2·(pod−1)` ring steps in
/// which every processor sends one chunk to its ring neighbour within its
/// pod, direction reseeded per step. Real-id, modular-arithmetic variant
/// of [`crate::stream::AllReduceStream`].
#[derive(Clone, Copy, Debug)]
pub struct PodAllReduce {
    n: u32,
    pod: u32,
    seed: u64,
}

impl PodAllReduce {
    /// All-reduce on `n` processors in pods of `pod` (`2 ≤ pod ≤ n`,
    /// `pod` dividing `n`).
    pub fn new(n: u32, pod: u32, seed: u64) -> Self {
        assert!(pod >= 2 && pod <= n && n.is_multiple_of(pod));
        PodAllReduce { n, pod, seed }
    }

    /// The collective sized for a topology: all its processors, pods as
    /// the leaves under one deepest-level switch.
    pub fn for_topology(topo: &Topology, seed: u64) -> Self {
        PodAllReduce::new(topo.leaves() as u32, topo.pod(), seed)
    }
}

impl MessageStream for PodAllReduce {
    fn len(&self) -> usize {
        2 * (self.pod as usize - 1) * self.n as usize
    }

    fn family(&self) -> &'static str {
        "allreduce"
    }

    fn message(&self, j: usize) -> Message {
        let src = (j % self.n as usize) as u32;
        let step = (j / self.n as usize) as u64;
        let fwd = splitmix64(self.seed ^ step) & 1 == 0;
        let pod_base = src - src % self.pod;
        let pos = src % self.pod;
        let next = if fwd {
            (pos + 1) % self.pod
        } else {
            (pos + self.pod - 1) % self.pod
        };
        Message::new(src, pod_base + next)
    }
}

/// Rotation all-to-all over pods of arbitrary size: in `pod − 1` rounds
/// every processor sends to each other member of its pod. Real-id,
/// modular-arithmetic variant of [`crate::stream::AllToAllStream`].
#[derive(Clone, Copy, Debug)]
pub struct PodAllToAll {
    n: u32,
    pod: u32,
}

impl PodAllToAll {
    /// All-to-all on `n` processors in pods of `pod` (`2 ≤ pod ≤ n`,
    /// `pod` dividing `n`).
    pub fn new(n: u32, pod: u32) -> Self {
        assert!(pod >= 2 && pod <= n && n.is_multiple_of(pod));
        PodAllToAll { n, pod }
    }

    /// The collective sized for a topology's own pods.
    pub fn for_topology(topo: &Topology) -> Self {
        PodAllToAll::new(topo.leaves() as u32, topo.pod())
    }
}

impl MessageStream for PodAllToAll {
    fn len(&self) -> usize {
        (self.pod as usize - 1) * self.n as usize
    }

    fn family(&self) -> &'static str {
        "alltoall"
    }

    fn message(&self, j: usize) -> Message {
        let src = (j % self.n as usize) as u32;
        let round = (j / self.n as usize) as u32 + 1;
        let pod_base = src - src % self.pod;
        let pos = src % self.pod;
        Message::new(src, pod_base + (pos + round) % self.pod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{AllReduceStream, AllToAllStream};
    use ft_topology::Embedded;

    #[test]
    fn pow2_pods_match_mask_based_streams() {
        let (n, pod, seed) = (64u32, 8u32, 42u64);
        let a = PodAllReduce::new(n, pod, seed);
        let b = AllReduceStream::new(n, pod, seed);
        assert_eq!(a.len(), b.len());
        for j in 0..a.len() {
            assert_eq!(a.message(j), b.message(j), "allreduce step {j}");
        }
        let a = PodAllToAll::new(n, pod);
        let b = AllToAllStream::new(n, pod);
        assert_eq!(a.len(), b.len());
        for j in 0..a.len() {
            assert_eq!(a.message(j), b.message(j), "alltoall step {j}");
        }
    }

    #[test]
    fn collectives_stay_inside_their_pods() {
        // k = 6: pods of 3 — nothing the mask-based streams could model.
        let topo = ft_topology::Topology::kary_pods(6, 1);
        let ar = PodAllReduce::for_topology(&topo, 7);
        let aa = PodAllToAll::for_topology(&topo);
        assert_eq!(ar.len(), 2 * 2 * 54);
        assert_eq!(aa.len(), 2 * 54);
        for j in 0..ar.len() {
            let m = ar.message(j);
            assert_eq!(m.src.0 / 3, m.dst.0 / 3, "allreduce left its pod");
            assert_ne!(m.src, m.dst);
        }
        for j in 0..aa.len() {
            let m = aa.message(j);
            assert_eq!(m.src.0 / 3, m.dst.0 / 3, "alltoall left its pod");
            assert_ne!(m.src, m.dst);
        }
    }

    #[test]
    fn pod_traffic_never_crosses_pod_uplinks() {
        // All collective traffic stays below the deepest switches: the
        // embedded load on every level above the pod boundary is zero.
        let topo = ft_topology::Topology::kary_pods(6, 2);
        let emb = Embedded::new(topo.clone());
        let aa = PodAllToAll::for_topology(&topo);
        let mapped = emb.stream(&aa).collect_set();
        let load = ft_core::LoadMap::of(emb.tree(), &mapped);
        let per = load.max_per_level(emb.tree());
        let pod_boundary = emb.boundary(topo.depth() - 1);
        for (b, &l) in per.iter().enumerate() {
            if (b as u32) < pod_boundary {
                assert_eq!(l, 0, "traffic escaped the pods at binary level {b}");
            }
        }
    }
}
