//! Golden equivalence: the flat-array engine must reproduce the retained
//! reference engine byte for byte — same delivered/dropped index lists, same
//! tick counts, same channel usage, same run traces — across trees, capacity
//! profiles, switch flavors, arbitration policies, fault patterns, and
//! workloads. Well over 200 seeded cases.

use ft_core::rng::SplitMix64;
use ft_core::{CapacityProfile, FatTree, Message, MessageSet};
use ft_sim::reference::{run_to_completion_reference, simulate_cycle_reference};
use ft_sim::{
    run_to_completion, simulate_cycle, Arbitration, FaultModel, MetaWidth, SimConfig, SwitchKind,
};

/// The tree shapes under test.
fn trees() -> Vec<FatTree> {
    vec![
        FatTree::new(8, CapacityProfile::Constant(1)),
        FatTree::new(16, CapacityProfile::Constant(2)),
        FatTree::new(32, CapacityProfile::FullDoubling),
        FatTree::universal(32, 8),
        FatTree::universal(64, 16),
    ]
}

/// The engine configurations under test. Both metadata widths are pinned
/// against the (wide, HashMap-based) reference — `Narrow` is what `Auto`
/// picks on these small trees, `Wide` keeps the u64 path honest, and their
/// shared oracle makes the two layouts byte-identical to each other.
fn configs() -> Vec<SimConfig> {
    let mut cfgs = Vec::new();
    for switch in [SwitchKind::Ideal, SwitchKind::Partial] {
        for arbitration in [Arbitration::SlotOrder, Arbitration::Random(0xFEED)] {
            for faults in [
                FaultModel::none(),
                FaultModel {
                    dead_wire_fraction: 0.2,
                    seed: 3,
                },
            ] {
                for meta in [MetaWidth::Narrow, MetaWidth::Wide] {
                    cfgs.push(SimConfig {
                        payload_bits: 16,
                        switch,
                        arbitration,
                        faults,
                        threads: 1,
                        meta,
                    });
                }
            }
        }
    }
    cfgs
}

/// A seeded workload on `n` processors: permutations, hot spots, and random
/// many-to-many traffic (including locals and duplicate sources).
fn workload(n: u32, seed: u64) -> Vec<Message> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    match seed % 3 {
        0 => {
            let mut dst: Vec<u32> = (0..n).collect();
            rng.shuffle(&mut dst);
            (0..n).map(|i| Message::new(i, dst[i as usize])).collect()
        }
        1 => {
            let hot = rng.gen_range(0..n);
            (0..n).map(|i| Message::new(i, hot)).collect()
        }
        _ => (0..2 * n)
            .map(|_| Message::new(rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect(),
    }
}

fn assert_cycles_equal(ft: &FatTree, msgs: &[Message], cfg: &SimConfig, tag: &str) {
    let want = simulate_cycle_reference(ft, msgs, cfg);
    let got = simulate_cycle(ft, msgs, cfg);
    assert_eq!(got.delivered, want.delivered, "delivered diverged [{tag}]");
    assert_eq!(got.dropped, want.dropped, "dropped diverged [{tag}]");
    assert_eq!(got.ticks, want.ticks, "ticks diverged [{tag}]");
    assert_eq!(
        got.channel_use, want.channel_use,
        "channel_use diverged [{tag}]"
    );
}

fn assert_runs_equal(ft: &FatTree, msgs: &MessageSet, cfg: &SimConfig, tag: &str) {
    // Some combinations legitimately stall (e.g. a deterministic partial
    // concentrator that routes nothing at a hot spot): both engines must
    // then hit the same no-progress assertion.
    let want = std::panic::catch_unwind(|| run_to_completion_reference(ft, msgs, cfg));
    let got = std::panic::catch_unwind(|| run_to_completion(ft, msgs, cfg));
    let (want, got) = match (want, got) {
        (Ok(w), Ok(g)) => (w, g),
        (Err(_), Err(_)) => return, // both stalled: equivalent behavior
        (Ok(_), Err(_)) => panic!("only the flat-array engine stalled [{tag}]"),
        (Err(_), Ok(_)) => panic!("only the reference engine stalled [{tag}]"),
    };
    assert_eq!(got.cycles, want.cycles, "cycles diverged [{tag}]");
    assert_eq!(
        got.delivered_per_cycle, want.delivered_per_cycle,
        "delivered_per_cycle diverged [{tag}]"
    );
    assert_eq!(
        got.total_ticks, want.total_ticks,
        "total_ticks diverged [{tag}]"
    );
    assert_eq!(
        got.delivery_order, want.delivery_order,
        "delivery_order diverged [{tag}]"
    );
}

#[test]
fn simulate_cycle_matches_reference_everywhere() {
    let mut cases = 0usize;
    for ft in trees() {
        for cfg in configs() {
            for seed in 0..9u64 {
                let msgs = workload(ft.n(), 101 + seed);
                let tag = format!("n={} cfg={cfg:?} seed={seed}", ft.n());
                assert_cycles_equal(&ft, &msgs, &cfg, &tag);
                cases += 1;
            }
        }
    }
    assert!(cases >= 200, "only {cases} single-cycle golden cases");
}

#[test]
fn run_to_completion_matches_reference_everywhere() {
    let mut cases = 0usize;
    for ft in trees() {
        for cfg in configs() {
            for seed in 0..5u64 {
                let msgs: MessageSet = workload(ft.n(), 211 + seed).into_iter().collect();
                let tag = format!("n={} cfg={cfg:?} seed={seed}", ft.n());
                assert_runs_equal(&ft, &msgs, &cfg, &tag);
                cases += 1;
            }
        }
    }
    assert!(cases >= 200, "only {cases} run-to-completion golden cases");
}

#[test]
fn empty_and_degenerate_sets_match() {
    let ft = FatTree::universal(16, 4);
    let cfg = SimConfig::default();
    assert_cycles_equal(&ft, &[], &cfg, "empty");
    // All-local traffic: delivered without touching the network.
    let locals: Vec<Message> = (0..16).map(|i| Message::new(i, i)).collect();
    assert_cycles_equal(&ft, &locals, &cfg, "all-local");
    let set: MessageSet = locals.into_iter().collect();
    assert_runs_equal(&ft, &set, &cfg, "all-local-run");
}

#[test]
fn parallel_execution_is_deterministic() {
    // Thread count must not change a single byte of any report: sibling
    // subtrees own disjoint channels, and the scatter pass is serial.
    for ft in [
        FatTree::universal(64, 16),
        FatTree::new(32, CapacityProfile::Constant(2)),
    ] {
        for arbitration in [Arbitration::SlotOrder, Arbitration::Random(9)] {
            for seed in 0..4u64 {
                let msgs: MessageSet = workload(ft.n(), 307 + seed).into_iter().collect();
                let serial = SimConfig {
                    arbitration,
                    threads: 1,
                    ..Default::default()
                };
                let want = run_to_completion(&ft, &msgs, &serial);
                for threads in [2, 3, 8] {
                    let cfg = SimConfig { threads, ..serial };
                    let got = run_to_completion(&ft, &msgs, &cfg);
                    assert_eq!(got.cycles, want.cycles, "threads={threads}");
                    assert_eq!(got.delivery_order, want.delivery_order, "threads={threads}");
                    assert_eq!(got.total_ticks, want.total_ticks, "threads={threads}");
                }
            }
        }
    }
}

#[test]
fn parallel_single_cycle_matches_reference() {
    let ft = FatTree::universal(128, 32);
    for seed in 0..6u64 {
        let msgs = workload(ft.n(), 401 + seed);
        for threads in [2, 4] {
            let cfg = SimConfig {
                threads,
                ..Default::default()
            };
            let want = simulate_cycle_reference(&ft, &msgs, &SimConfig::default());
            let got = simulate_cycle(&ft, &msgs, &cfg);
            assert_eq!(
                got.delivered, want.delivered,
                "threads={threads} seed={seed}"
            );
            assert_eq!(
                got.channel_use, want.channel_use,
                "threads={threads} seed={seed}"
            );
        }
    }
}
