//! End-to-end scrape tests: spawn a server with a metrics listener,
//! drive it with the bench client, and read the three exposition pages
//! over real TCP. Checks the `ftsim-metrics/v1` document's required
//! keys, counter monotonicity across scrapes, span reconstructibility
//! through `ft_telemetry::parse_jsonl`, and that a no-metrics server
//! refuses to expose anything.

use ft_serve::client::{bench, BenchConfig, BenchMode};
use ft_serve::metrics::http_get;
use ft_serve::proto::Engine;
use ft_serve::server::{spawn, ServerConfig};
use ft_telemetry::EventKind;

fn server_cfg() -> ServerConfig {
    ServerConfig {
        n: 64,
        w: 16,
        slots: 4,
        window_us: 200,
        inflight: 64,
        idle_ms: 5_000,
        max_requests: 0,
        addr: "127.0.0.1:0".to_string(),
        metrics: true,
        metrics_addr: Some("127.0.0.1:0".to_string()),
    }
}

fn client_cfg(addr: &str) -> BenchConfig {
    BenchConfig {
        addr: addr.to_string(),
        n: 64,
        w: 16,
        clients: 2,
        requests: 40,
        messages: 24,
        seed: 7,
        engine: Engine::Schedule,
        mode: BenchMode::Closed,
        verify: true,
    }
}

/// Pull `"key":<int>` out of a flat JSON document (the schemas under
/// test never nest the same key twice).
fn int_field(doc: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = doc
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {doc}"));
    doc[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{key} is not an integer in {doc}"))
}

#[test]
fn scrape_pages_reflect_served_traffic_and_stay_monotonic() {
    let server = spawn(server_cfg()).expect("spawn server");
    let maddr = server.metrics_addr().expect("metrics listener bound");

    // Before any traffic the document must already parse with its keys.
    let empty = http_get(maddr, "/metrics.json").expect("scrape cold");
    assert!(empty.contains("\"schema\":\"ftsim-metrics/v1\""));
    assert_eq!(int_field(&empty, "served"), 0);

    let r = bench(&client_cfg(&server.addr().to_string())).expect("bench");
    assert_eq!(r.ok, 40);
    assert_eq!(r.mismatches, 0, "metrics must not disturb byte identity");

    let doc1 = http_get(maddr, "/metrics.json").expect("scrape 1");
    for key in [
        "\"schema\":\"ftsim-metrics/v1\"",
        "\"requests\":",
        "\"lambda_budget\":",
        "\"batch_occupancy\":",
        "\"stages\":",
        "\"schedule\":",
        "\"decode\":",
        "\"admit_wait\":",
        "\"batch_wait\":",
        "\"encode\":",
        "\"wall\":",
        "\"wall_by_width\":",
        "\"spans\":",
        "\"shard_links\":null",
    ] {
        assert!(doc1.contains(key), "missing {key} in {doc1}");
    }
    assert_eq!(int_field(&doc1, "served"), 40);
    assert!(int_field(&doc1, "assigned") >= 40);
    assert!(int_field(&doc1, "batches") > 0);
    assert!(int_field(&doc1, "limit") > 0);

    // A second run: every counter is monotonically non-decreasing.
    let r2 = bench(&client_cfg(&server.addr().to_string())).expect("bench 2");
    assert_eq!(r2.ok, 40);
    let doc2 = http_get(maddr, "/metrics.json").expect("scrape 2");
    for key in ["served", "assigned", "batches", "count"] {
        assert!(
            int_field(&doc2, key) >= int_field(&doc1, key),
            "{key} went backwards between scrapes"
        );
    }
    assert_eq!(int_field(&doc2, "served"), 80);

    // Prometheus page agrees with the JSON document.
    let prom = http_get(maddr, "/metrics").expect("prom scrape");
    assert!(prom.contains("ftsim_serve_requests_total 80"), "{prom}");
    assert!(
        prom.contains("ftsim_serve_stage_ns{engine=\"schedule\",stage=\"wall\",quantile=\"0.99\"}")
    );
    assert!(prom.contains("ftsim_serve_batch_occupancy_bucket{le=\"+Inf\"}"));

    // Span JSONL parses back, and a request's path is reconstructible:
    // some rid must appear as admitted → batched → done.
    let spans = http_get(maddr, "/spans").expect("span scrape");
    let events = ft_telemetry::parse_jsonl(&spans).expect("span jsonl parses");
    assert!(!events.is_empty());
    let path_complete = events
        .iter()
        .filter(|e| e.kind == EventKind::ReqAdmit)
        .any(|a| {
            events
                .iter()
                .any(|e| e.kind == EventKind::ReqBatch && e.tag == a.tag)
                && events
                    .iter()
                    .any(|e| e.kind == EventKind::ReqDone && e.tag == a.tag)
        });
    assert!(
        path_complete,
        "no request id traces admit → batch → done in {spans}"
    );

    server.stop();
}

#[test]
fn busy_rejects_show_up_in_counters_and_spans() {
    let mut scfg = server_cfg();
    scfg.inflight = 2;
    scfg.window_us = 5_000;
    let server = spawn(scfg).expect("spawn server");
    let maddr = server.metrics_addr().unwrap();
    let mut cfg = client_cfg(&server.addr().to_string());
    cfg.requests = 80;
    cfg.verify = false;
    cfg.mode = BenchMode::Burst { size: 40 };
    let r = bench(&cfg).expect("bench");
    assert!(r.busy > 0, "burst must overload the tiny budget");

    let doc = http_get(maddr, "/metrics.json").expect("scrape");
    assert_eq!(int_field(&doc, "busy_rejected"), r.busy);
    let events = ft_telemetry::parse_jsonl(&http_get(maddr, "/spans").unwrap()).unwrap();
    let busy_spans = events
        .iter()
        .filter(|e| e.kind == EventKind::ReqBusy)
        .count() as u64;
    // The ring may have wrapped, but with 80 requests it will not have.
    assert_eq!(busy_spans, r.busy, "one ReqBusy span per rejected request");
    server.stop();
}

#[test]
fn no_metrics_server_serves_but_does_not_expose() {
    // The overhead-gate baseline: metrics off, no listener, byte-for-byte
    // identical service behaviour.
    let mut scfg = server_cfg();
    scfg.metrics = false;
    scfg.metrics_addr = None;
    let server = spawn(scfg).expect("spawn server");
    assert!(server.metrics_addr().is_none());
    let r = bench(&client_cfg(&server.addr().to_string())).expect("bench");
    assert_eq!(r.ok, 40);
    assert_eq!(r.mismatches, 0);
    let stats = server.stop();
    assert_eq!(stats.served, 40);
}
