//! E4 — Theorem 5: any network in a cube of volume v has an
//! (O(v^(2/3)), ∛4) decomposition tree, built by cutting planes.

use crate::tables::{f, Table};
use ft_layout::{DecompTree, Placement};

/// Run E4.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E4 — Theorem 5: cutting-plane decomposition trees of cubes",
        &[
            "n procs",
            "volume v",
            "root bw w₀",
            "6·v^(2/3)",
            "depth r",
            "max 4·w_{i+3}/w_i",
        ],
    );
    for &n in &[64usize, 512, 4096] {
        let p = Placement::grid3d(n, 1.0);
        let tree = DecompTree::build(&p, 1.0);
        t.row(vec![
            n.to_string(),
            f(p.volume()),
            f(tree.root_bandwidth()),
            f(6.0 * p.volume().powf(2.0 / 3.0)),
            tree.depth.to_string(),
            f(tree.worst_quartering_ratio()),
        ]);
    }
    // Non-cubic competitors: flat (mesh-like) and elongated boxes.
    let mut rng = super::rng();
    for (name, p) in [
        ("2-D slab 32×32×1", Placement::grid2d(1024, 1.0)),
        (
            "random cube",
            Placement::random_in_cube(1000, 10.0, &mut rng),
        ),
    ] {
        let tree = DecompTree::build(&p, 1.0);
        t.row(vec![
            format!("{name} ({})", p.n()),
            f(p.volume()),
            f(tree.root_bandwidth()),
            f(6.0 * p.volume().powf(2.0 / 3.0)),
            tree.depth.to_string(),
            f(tree.worst_quartering_ratio()),
        ]);
    }
    t.note("Root bandwidth equals the surface-area law exactly for cubes (w₀ = 6·v^(2/3))");
    t.note("and exceeds it only by the aspect-ratio constant for non-cubic boxes.");
    t.note("The last column verifies the ∛4 ratio: every three cuts quarter the surface (= 1.00).");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_ratio_column_is_one() {
        let t = super::run();
        for row in &t[0].rows {
            let ratio: f64 = row[5].parse().unwrap();
            assert!((ratio - 1.0).abs() < 0.01, "quartering ratio {ratio}");
        }
    }
}
