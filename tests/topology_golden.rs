//! Byte-identity goldens for the generalized-topology layer.
//!
//! The acceptance bar for `ft-topology` is that the binary family is not
//! "approximately" the old code path — it *is* the old code path: for
//! every capacity profile, `Embedded::new(Topology::binary(n, p))` must
//! hand the engines the very tree `FatTree::new(n, p)` builds, with the
//! identity leaf map, so simulator runs, Theorem-1 schedules, and the
//! seeded on-line router all reproduce the direct calls bit for bit.
//! Generalized families (k-ary pods, two-layer, custom tables) cannot be
//! compared to a legacy twin, so they are pinned by cross-engine
//! consistency instead: schedules validate on the embedded tree, every
//! engine delivers the whole workload, and nobody beats ⌈λ⌉.

use fat_tree::core::rng::SplitMix64;
use fat_tree::prelude::*;
use fat_tree::sched::{route_topology, schedule_topology, SchedArena};
use fat_tree::sim::run_topology_to_completion;
use fat_tree::topology::Topology;

fn perm(n: u32, seed: u64) -> MessageSet {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut dst: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut dst);
    (0..n).map(|i| Message::new(i, dst[i as usize])).collect()
}

/// Every `CapacityProfile` variant at n = 64 (lg n + 1 = 7 levels).
fn profiles() -> Vec<CapacityProfile> {
    vec![
        CapacityProfile::Universal { root_capacity: 16 },
        CapacityProfile::FullDoubling,
        CapacityProfile::Constant(3),
        CapacityProfile::PerLevel(vec![20, 16, 12, 8, 4, 2, 1]),
        CapacityProfile::UniversalWithDegree {
            root_capacity: 16,
            degree: 2,
        },
    ]
}

#[test]
fn binary_embedding_is_the_identity() {
    for profile in profiles() {
        let emb = Embedded::new(Topology::binary(64, profile.clone()));
        let ft = FatTree::new(64, profile.clone());
        assert!(
            emb.is_identity(),
            "{profile:?}: binary leaf map not identity"
        );
        assert_eq!(emb.padded_n(), 64);
        assert_eq!(emb.tree().height(), ft.height(), "{profile:?}");
        for k in 0..=ft.height() {
            assert_eq!(
                emb.tree().cap_at_level(k),
                ft.cap_at_level(k),
                "{profile:?}: capacity differs at level {k}"
            );
        }
        let m = perm(64, 11);
        let mapped = emb.map_set(&m);
        assert_eq!(
            mapped.as_slice(),
            m.as_slice(),
            "{profile:?}: map_set moved ids"
        );
    }
}

#[test]
fn binary_simulator_runs_are_byte_identical() {
    let cfg = SimConfig::default();
    for profile in profiles() {
        let emb = Embedded::new(Topology::binary(64, profile.clone()));
        let ft = FatTree::new(64, profile.clone());
        for seed in [1u64, 2, 3] {
            let m = perm(64, seed);
            let direct = run_to_completion(&ft, &m, &cfg);
            let topo = run_topology_to_completion(&emb, &m, &cfg);
            assert_eq!(direct.cycles, topo.cycles, "{profile:?} seed {seed}");
            assert_eq!(
                direct.delivered_per_cycle, topo.delivered_per_cycle,
                "{profile:?} seed {seed}"
            );
            assert_eq!(
                direct.delivery_order, topo.delivery_order,
                "{profile:?} seed {seed}"
            );
            assert_eq!(
                direct.total_ticks, topo.total_ticks,
                "{profile:?} seed {seed}"
            );
        }
    }
}

#[test]
fn binary_schedules_are_byte_identical() {
    for profile in profiles() {
        let emb = Embedded::new(Topology::binary(64, profile.clone()));
        let ft = FatTree::new(64, profile.clone());
        for seed in [5u64, 6] {
            let m = perm(64, seed);
            let (direct, dstats) = SchedArena::new(&ft).schedule(&ft, &m, 1);
            let (topo, tstats) = schedule_topology(&emb, &m, 1);
            assert_eq!(direct.cycles(), topo.cycles(), "{profile:?} seed {seed}");
            assert_eq!(
                dstats.load_factor, tstats.load_factor,
                "{profile:?} seed {seed}"
            );
            assert_eq!(
                dstats.total_cycles, tstats.total_cycles,
                "{profile:?} seed {seed}"
            );
        }
    }
}

#[test]
fn binary_online_routes_are_byte_identical() {
    let cfg = OnlineConfig::default();
    for profile in profiles() {
        let emb = Embedded::new(Topology::binary(64, profile.clone()));
        let ft = FatTree::new(64, profile.clone());
        let m = perm(64, 8);
        let mut rng = SplitMix64::seed_from_u64(13);
        let direct = OnlineArena::new(&ft).route(&ft, &m, &mut rng, cfg);
        let mut rng = SplitMix64::seed_from_u64(13);
        let topo = route_topology(&emb, &m, &mut rng, cfg);
        assert_eq!(direct.cycles, topo.cycles, "{profile:?}");
        assert_eq!(
            direct.delivered_per_cycle, topo.delivered_per_cycle,
            "{profile:?}"
        );
    }
}

/// The generalized families: no legacy twin exists, so pin cross-engine
/// consistency — valid schedules, full delivery, and nobody beating ⌈λ⌉.
#[test]
fn generalized_families_are_cross_engine_consistent() {
    let machines = vec![
        Topology::kary_pods(8, 2),
        Topology::two_layer(16, 8, 120),
        Topology::custom(
            vec![5, 3],
            vec![
                fat_tree::topology::LevelCaps::symmetric(1),
                fat_tree::topology::LevelCaps::symmetric(3),
                fat_tree::topology::LevelCaps::symmetric(1),
            ],
        ),
    ];
    for topo in machines {
        let emb = Embedded::new(topo);
        let spec = emb.topology().spec().to_string();
        let m = perm(emb.leaves(), 23);
        let (lambda, _) = emb.lambda(&m);
        let mapped = emb.map_set(&m);

        // Off-line: the Theorem-1 schedule must be valid on the embedded
        // tree, carry exactly the mapped messages, and respect λ.
        let (sched, stats) = schedule_topology(&emb, &m, 1);
        sched.validate(emb.tree(), &mapped).unwrap();
        assert!((stats.load_factor - lambda).abs() < 1e-9, "{spec}");
        assert!(
            sched.cycles().len() as f64 >= lambda.ceil(),
            "{spec}: schedule beat ⌈λ⌉"
        );

        // Simulator: everything delivered, cycles ≥ ⌈λ⌉.
        let run = run_topology_to_completion(&emb, &m, &SimConfig::default());
        assert_eq!(
            run.delivered_per_cycle.iter().sum::<usize>(),
            m.len(),
            "{spec}: simulator lost messages"
        );
        assert!(run.cycles as f64 >= lambda.ceil(), "{spec}: sim beat ⌈λ⌉");

        // On-line: everything delivered; stream path identical under the
        // same seed.
        let mut rng = SplitMix64::seed_from_u64(31);
        let r = route_topology(&emb, &m, &mut rng, OnlineConfig::default());
        assert!(!r.truncated, "{spec}");
        assert_eq!(
            r.delivered_per_cycle.iter().sum::<usize>(),
            m.len(),
            "{spec}: router lost messages"
        );
    }
}

/// Mixed-radix leaf maps must be bijections onto the padded tree: every
/// real processor maps to a distinct padded leaf and back.
#[test]
fn leaf_maps_are_bijective() {
    for topo in [
        Topology::kary_pods(6, 1),
        Topology::two_layer(16, 8, 100),
        Topology::two_layer(8, 4, 30),
    ] {
        let emb = Embedded::new(topo);
        let spec = emb.topology().spec().to_string();
        let mut seen = vec![false; emb.padded_n() as usize];
        for p in 0..emb.leaves() {
            let q = emb.map_proc(p);
            assert!(q < emb.padded_n(), "{spec}: leaf {p} maps out of range");
            assert!(!seen[q as usize], "{spec}: leaf map collides at {q}");
            seen[q as usize] = true;
            assert_eq!(emb.unmap_proc(q), Some(p), "{spec}: unmap broken at {q}");
        }
    }
}
