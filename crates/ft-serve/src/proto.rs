//! Serve-protocol payload codecs over [`ft_shard::wire`] frames.
//!
//! The service speaks the same length-prefixed checksummed packed-u64
//! frames as the cross-shard protocol — [`ft_shard::wire::read_frame`] /
//! [`write_frame_buf`] on the byte stream, [`begin_frame`] / [`end_frame`]
//! for pooled in-place composition — with five serve-specific frame kinds
//! (`Hello`, `HelloAck`, `Req`, `Resp`, `Busy`). The `shard` header field
//! carries the server-assigned connection id and `seq` echoes the client's
//! per-connection request sequence, so responses from a coalesced batch
//! demultiplex without any per-request state on the wire.
//!
//! Payload layouts (all words u64):
//!
//! ```text
//! Hello     [version, n<<32 | w]
//! HelloAck  [version, n<<32 | w, slots<<32 | window_us, inflight<<32 | max_msgs]
//! Req       [req_id, engine, seed, msg…]          msg = src<<32 | dst
//! Resp      [req_id, engine, num_cycles, flags, data…]
//! Busy      [req_id, inflight<<32 | limit]
//! ```
//!
//! `Resp.data` packs two u32 values per word (low half first): for the
//! schedule engine, one delivery-cycle id per request message in request
//! order; for the online engine, messages delivered per cycle. `flags` is
//! reserved-zero for schedule responses — deliberately *not* λ, which for a
//! coalesced pass is the batch maximum, not the solo value — and carries
//! the truncation bit for online responses.
//!
//! [`write_frame_buf`]: ft_shard::wire::write_frame_buf
//! [`begin_frame`]: ft_shard::wire::begin_frame
//! [`end_frame`]: ft_shard::wire::end_frame

use ft_shard::wire::{begin_frame, end_frame, FrameKind};

/// Version of the serve handshake/payload layout (independent of the
/// underlying frame protocol's [`ft_shard::wire::PROTO_VERSION`]).
pub const SERVE_PROTO_VERSION: u64 = 1;

/// Hard cap on messages per request; a `Req` announcing more is rejected
/// as a protocol error rather than admitted into a batch.
pub const MAX_REQ_MSGS: usize = 1 << 20;

/// Which engine a request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Engine {
    /// Off-line Theorem 1 scheduling: response data is one cycle id per
    /// request message. Coalesced across requests in one shared pass.
    Schedule = 0,
    /// On-line randomized routing: response data is delivered-per-cycle.
    /// Served per-request on the shared warmed arena.
    Online = 1,
}

impl Engine {
    /// Decode an engine selector word.
    pub fn from_u64(v: u64) -> Option<Engine> {
        match v {
            0 => Some(Engine::Schedule),
            1 => Some(Engine::Online),
            _ => None,
        }
    }
}

/// Why a serve payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Payload shorter than the fixed header for its kind.
    Truncated,
    /// Handshake version mismatch.
    BadVersion(u64),
    /// Unknown engine selector.
    BadEngine(u64),
    /// A message endpoint is outside the served tree's leaves.
    BadLeaf { src: u32, dst: u32, n: u32 },
    /// More messages than [`MAX_REQ_MSGS`].
    TooManyMessages(usize),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Truncated => write!(f, "serve payload truncated"),
            ServeError::BadVersion(v) => write!(
                f,
                "serve protocol version mismatch: got {v}, want {SERVE_PROTO_VERSION}"
            ),
            ServeError::BadEngine(v) => write!(f, "unknown engine selector {v}"),
            ServeError::BadLeaf { src, dst, n } => {
                write!(f, "message {src}->{dst} outside tree with {n} leaves")
            }
            ServeError::TooManyMessages(m) => {
                write!(f, "request carries {m} messages (cap {MAX_REQ_MSGS})")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Compose a `Hello` frame in place.
pub fn encode_hello(buf: &mut Vec<u64>, conn: u16, n: u32, w: u64) {
    debug_assert!(w <= u32::MAX as u64, "root capacity must fit 32 bits");
    begin_frame(buf, FrameKind::Hello, conn, 0);
    buf.push(SERVE_PROTO_VERSION);
    buf.push((n as u64) << 32 | w);
    end_frame(buf);
}

/// Decode a `Hello` payload into `(n, w)`.
pub fn decode_hello(p: &[u64]) -> Result<(u32, u64), ServeError> {
    if p.len() < 2 {
        return Err(ServeError::Truncated);
    }
    if p[0] != SERVE_PROTO_VERSION {
        return Err(ServeError::BadVersion(p[0]));
    }
    Ok(((p[1] >> 32) as u32, p[1] & 0xFFFF_FFFF))
}

/// Server-side handshake reply: the accepted shape plus the batching and
/// admission limits the client should pace against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HelloAck {
    pub n: u32,
    pub w: u64,
    pub slots: u32,
    pub window_us: u32,
    pub inflight: u32,
    pub max_msgs: u32,
}

/// Compose a `HelloAck` frame in place.
pub fn encode_hello_ack(buf: &mut Vec<u64>, conn: u16, ack: &HelloAck) {
    begin_frame(buf, FrameKind::HelloAck, conn, 0);
    buf.push(SERVE_PROTO_VERSION);
    buf.push((ack.n as u64) << 32 | ack.w);
    buf.push((ack.slots as u64) << 32 | ack.window_us as u64);
    buf.push((ack.inflight as u64) << 32 | ack.max_msgs as u64);
    end_frame(buf);
}

/// Decode a `HelloAck` payload.
pub fn decode_hello_ack(p: &[u64]) -> Result<HelloAck, ServeError> {
    if p.len() < 4 {
        return Err(ServeError::Truncated);
    }
    if p[0] != SERVE_PROTO_VERSION {
        return Err(ServeError::BadVersion(p[0]));
    }
    Ok(HelloAck {
        n: (p[1] >> 32) as u32,
        w: p[1] & 0xFFFF_FFFF,
        slots: (p[2] >> 32) as u32,
        window_us: p[2] as u32,
        inflight: (p[3] >> 32) as u32,
        max_msgs: p[3] as u32,
    })
}

/// Borrowed view of a decoded `Req` payload. `msgs` stays packed
/// (`src<<32 | dst` per word); [`crate::core::BatchBuf::admit`] unpacks and
/// validates while copying into the batch.
#[derive(Clone, Copy, Debug)]
pub struct ReqView<'a> {
    pub req_id: u64,
    pub engine: Engine,
    pub seed: u64,
    pub msgs: &'a [u64],
}

/// Begin composing a `Req` frame: header words only. Push packed
/// `src<<32 | dst` message words, then seal with
/// [`ft_shard::wire::end_frame`].
pub fn begin_req(buf: &mut Vec<u64>, conn: u16, seq: u32, req_id: u64, engine: Engine, seed: u64) {
    begin_frame(buf, FrameKind::Req, conn, seq);
    buf.push(req_id);
    buf.push(engine as u64);
    buf.push(seed);
}

/// Decode a `Req` payload.
pub fn decode_req(p: &[u64]) -> Result<ReqView<'_>, ServeError> {
    if p.len() < 3 {
        return Err(ServeError::Truncated);
    }
    let engine = Engine::from_u64(p[1]).ok_or(ServeError::BadEngine(p[1]))?;
    let msgs = &p[3..];
    if msgs.len() > MAX_REQ_MSGS {
        return Err(ServeError::TooManyMessages(msgs.len()));
    }
    Ok(ReqView {
        req_id: p[0],
        engine,
        seed: p[2],
        msgs,
    })
}

/// Borrowed view of a decoded `Resp` payload; `values(i)` unpacks the
/// `i`-th u32 from the pair-packed data words.
#[derive(Clone, Copy, Debug)]
pub struct RespView<'a> {
    pub req_id: u64,
    pub engine: Engine,
    pub num_cycles: u32,
    pub flags: u64,
    pub data: &'a [u64],
}

impl RespView<'_> {
    /// The `i`-th packed u32 value (cycle id or delivered count).
    pub fn value(&self, i: usize) -> u32 {
        let w = self.data[i / 2];
        if i.is_multiple_of(2) {
            w as u32
        } else {
            (w >> 32) as u32
        }
    }
}

/// Decode a `Resp` payload.
pub fn decode_resp(p: &[u64]) -> Result<RespView<'_>, ServeError> {
    if p.len() < 4 {
        return Err(ServeError::Truncated);
    }
    let engine = Engine::from_u64(p[1]).ok_or(ServeError::BadEngine(p[1]))?;
    Ok(RespView {
        req_id: p[0],
        engine,
        num_cycles: p[2] as u32,
        flags: p[3],
        data: &p[4..],
    })
}

/// Compose a `Busy` reject frame in place.
pub fn encode_busy(
    buf: &mut Vec<u64>,
    conn: u16,
    seq: u32,
    req_id: u64,
    inflight: u32,
    limit: u32,
) {
    begin_frame(buf, FrameKind::Busy, conn, seq);
    buf.push(req_id);
    buf.push((inflight as u64) << 32 | limit as u64);
    end_frame(buf);
}

/// Decoded `Busy` payload: `(req_id, inflight, limit)`.
pub fn decode_busy(p: &[u64]) -> Result<(u64, u32, u32), ServeError> {
    if p.len() < 2 {
        return Err(ServeError::Truncated);
    }
    Ok((p[0], (p[1] >> 32) as u32, p[1] as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_shard::wire::{decode, end_frame};

    #[test]
    fn hello_roundtrip() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, 3, 256, 64);
        let f = decode(&buf).unwrap();
        assert_eq!(f.kind, FrameKind::Hello);
        assert_eq!(f.shard, 3);
        assert_eq!(decode_hello(f.payload).unwrap(), (256, 64));

        let mut ack_buf = Vec::new();
        let ack = HelloAck {
            n: 256,
            w: 64,
            slots: 8,
            window_us: 200,
            inflight: 64,
            max_msgs: 4096,
        };
        encode_hello_ack(&mut ack_buf, 3, &ack);
        let f = decode(&ack_buf).unwrap();
        assert_eq!(f.kind, FrameKind::HelloAck);
        assert_eq!(decode_hello_ack(f.payload).unwrap(), ack);
    }

    #[test]
    fn req_roundtrip_and_validation() {
        let mut buf = Vec::new();
        begin_req(&mut buf, 7, 42, 99, Engine::Schedule, 1985);
        buf.push(5u64 << 32 | 9);
        buf.push(255); // src 0, dst 255
        end_frame(&mut buf);
        let f = decode(&buf).unwrap();
        assert_eq!((f.kind, f.shard, f.seq), (FrameKind::Req, 7, 42));
        let req = decode_req(f.payload).unwrap();
        assert_eq!((req.req_id, req.seed), (99, 1985));
        assert_eq!(req.engine, Engine::Schedule);
        assert_eq!(req.msgs, &[5u64 << 32 | 9, 255]);
    }

    #[test]
    fn req_rejects_bad_engine_and_truncation() {
        assert!(matches!(decode_req(&[1, 2]), Err(ServeError::Truncated)));
        assert!(matches!(
            decode_req(&[0, 7, 0]),
            Err(ServeError::BadEngine(7))
        ));
        assert!(matches!(
            decode_hello(&[2, 0]),
            Err(ServeError::BadVersion(2))
        ));
    }

    #[test]
    fn resp_value_unpacking() {
        let p = [9u64, 1, 3, 1, 20u64 << 32 | 10, 5];
        let r = decode_resp(&p).unwrap();
        assert_eq!(r.engine, Engine::Online);
        assert_eq!(r.num_cycles, 3);
        assert_eq!(r.flags, 1);
        assert_eq!((r.value(0), r.value(1), r.value(2)), (10, 20, 5));
    }

    #[test]
    fn busy_roundtrip() {
        let mut buf = Vec::new();
        encode_busy(&mut buf, 2, 8, 77, 65, 64);
        let f = decode(&buf).unwrap();
        assert_eq!(f.kind, FrameKind::Busy);
        assert_eq!(decode_busy(f.payload).unwrap(), (77, 65, 64));
    }
}
