//! §VI's fixed-connection emulation: host any network on a degree-d
//! universal fat-tree, then run a real parallel algorithm (hypercube
//! bitonic-style ascend rounds) through the emulation.
//!
//! ```sh
//! cargo run --release --example emulation
//! ```

use fat_tree::networks::{FixedConnectionNetwork, Hypercube, Mesh2D, Ring, ShuffleExchange};
use fat_tree::sim::compile_cycle;
use fat_tree::universal::Emulation;
use fat_tree::workloads::{ascend_rounds, broadcast_rounds};

fn main() {
    println!("guest networks hosted on degree-d universal fat-trees:\n");
    println!(
        "{:<24} {:>4} {:>3} {:>10} {:>8} {:>10}",
        "guest", "n", "d", "volume", "host w", "ticks/step"
    );
    let guests: Vec<Box<dyn FixedConnectionNetwork>> = vec![
        Box::new(Ring::new(64)),
        Box::new(Mesh2D::new(8, 8)),
        Box::new(ShuffleExchange::new(6)),
        Box::new(Hypercube::new(6)),
    ];
    for g in &guests {
        let em = Emulation::build(g.as_ref(), 1.0);
        assert!(em.edge_load_factor <= 1.0);
        compile_cycle(&em.host, em.edge_set.as_slice())
            .expect("edge set compiles to static switch settings");
        println!(
            "{:<24} {:>4} {:>3} {:>10.0} {:>8} {:>10}",
            g.name(),
            g.n(),
            g.degree(),
            g.volume(),
            em.root_capacity,
            em.emulation_time(1),
        );
    }

    // Run an actual algorithm through the hypercube emulation.
    println!("\nrunning algorithms through the hypercube(d=6) emulation:");
    let host = Emulation::build(&Hypercube::new(6), 1.0);
    for (name, rounds) in [
        ("bitonic/FFT ascend", ascend_rounds(64)),
        ("binomial broadcast", broadcast_rounds(64, 0)),
    ] {
        let all_fit = rounds.iter().all(|r| host.round_is_one_cycle(r));
        println!(
            "  {name}: {} rounds, every round one delivery cycle: {} → total {} ticks",
            rounds.len(),
            all_fit,
            host.emulation_time(rounds.len()),
        );
        assert!(all_fit);
    }

    println!();
    println!("Each guest's entire wiring becomes a one-cycle message set on its host");
    println!("(λ = 1), compiled once into static switch settings — so every step of");
    println!("any algorithm written for the guest costs one O(lg n) delivery cycle.");
    println!("That is §VI's 'O(lg n) time degradation' for fixed-connection networks.");
}
