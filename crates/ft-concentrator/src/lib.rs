//! # ft-concentrator — concentrator switches for fat-tree nodes
//!
//! §IV of the paper builds each fat-tree node from three *concentrator
//! switches* (Fig. 3): circuits that create electrical paths from the input
//! wires that carry messages to (fewer) output wires. The paper uses
//! Pippenger's probabilistic construction of *(r, s, α) partial
//! concentrators*: bipartite graphs with `s = 2r/3` outputs, input degree
//! ≤ 6, output degree ≤ 9, such that any `k ≤ α·s` inputs (α = 3/4) can be
//! connected to `k` outputs by vertex-disjoint paths.
//!
//! This crate makes the construction concrete:
//!
//! * [`bipartite`] — bipartite graphs with exact degree bounds via the
//!   configuration model (random stub pairing),
//! * [`matching`] — Hopcroft–Karp maximum matching, the "network flow /
//!   sequence of matchings" the paper invokes for setting up paths,
//! * [`partial`] — the (r, s, α) partial concentrator: construction,
//!   routing of a set of active inputs, and empirical verification of the
//!   concentration property,
//! * [`cascade`] — pasting stages "outputs to inputs" to reach any constant
//!   concentration ratio in constant depth,
//! * [`crossbar`] — the ideal (r, s) concentrator as a cost/behaviour
//!   baseline (what §III assumes, at Θ(r·s) components instead of Θ(r)).

pub mod bipartite;
pub mod cascade;
pub mod crossbar;
pub mod matching;
pub mod partial;

pub use bipartite::BipartiteGraph;
pub use cascade::Cascade;
pub use crossbar::Crossbar;
pub use matching::{max_matching, MatchingArena};
pub use partial::PartialConcentrator;

/// Behaviour common to all concentrator switches: route a set of active
/// inputs to distinct outputs.
pub trait Concentrator {
    /// Number of input wires `r`.
    fn inputs(&self) -> usize;
    /// Number of output wires `s ≤ r`.
    fn outputs(&self) -> usize;
    /// Try to connect every active input to a distinct output.
    /// Returns `out[i] = Some(output)` per active input, or `None` if this
    /// set cannot be fully concentrated (congestion: messages get lost).
    fn route(&self, active: &[usize]) -> Option<Vec<usize>>;
    /// Hardware cost in components (switching elements), per the paper's
    /// component-count model.
    fn components(&self) -> usize;
    /// Depth (switching stages traversed); the paper requires O(1).
    fn depth(&self) -> usize;
}
