//! A2 — ablation: the matching-and-tracing scheduler (Theorem 1) vs the
//! greedy first-fit baseline, in schedule length and wall time.

use crate::tables::{f, Table};
use ft_core::{load_factor, FatTree};
use ft_sched::{schedule_greedy, schedule_theorem1};
use ft_workloads::{balanced_k_relation, cross_root};
use std::time::Instant;

/// Run A2.
pub fn run() -> Vec<Table> {
    let mut rng = super::rng();
    let mut t = Table::new(
        "A2 — scheduler ablation: Theorem 1 (matching+tracing) vs greedy first-fit",
        &[
            "n",
            "workload",
            "⌈λ⌉",
            "d thm1",
            "d greedy",
            "thm1 ms",
            "greedy ms",
        ],
    );
    for &n in &[256u32, 1024] {
        let ft = FatTree::universal(n, (n / 8).max(4) as u64);
        let cases: Vec<(String, ft_core::MessageSet)> = vec![
            (
                "balanced 8-relation".into(),
                balanced_k_relation(n, 8, &mut rng),
            ),
            ("cross-root ×4".into(), cross_root(n, 4, &mut rng)),
        ];
        for (name, msgs) in cases {
            let lambda = load_factor(&ft, &msgs).ceil();
            let t0 = Instant::now();
            let (s1, _) = schedule_theorem1(&ft, &msgs);
            let d1 = t0.elapsed().as_secs_f64() * 1e3;
            s1.validate(&ft, &msgs).expect("thm1 valid");
            let t0 = Instant::now();
            let sg = schedule_greedy(&ft, &msgs);
            let dg = t0.elapsed().as_secs_f64() * 1e3;
            sg.validate(&ft, &msgs).expect("greedy valid");
            t.row(vec![
                n.to_string(),
                name,
                f(lambda),
                s1.num_cycles().to_string(),
                sg.num_cycles().to_string(),
                f(d1),
                f(dg),
            ]);
        }
    }
    t.note("Greedy packs well on random traffic but has no guarantee; Theorem 1 is provably");
    t.note("within 2·lg n of ⌈λ⌉ and its per-channel even splits show on adversarial sets.");
    t.note("Wall-clock: matching+tracing is near-linear; greedy pays O(d·|M|·lg n) probing.");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn a2_both_schedulers_close_to_lower_bound() {
        let t = super::run();
        for row in &t[0].rows {
            let lam: f64 = row[2].parse().unwrap();
            let d1: f64 = row[3].parse().unwrap();
            let dg: f64 = row[4].parse().unwrap();
            assert!(d1 >= lam && dg >= lam);
            assert!(d1 <= 20.0 * lam + 20.0);
        }
    }
}
