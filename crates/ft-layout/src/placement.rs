//! Processor placements: where each processor of a routing network sits
//! inside its bounding cuboid. The input to the cutting-plane argument.

use crate::geom::Cuboid;
use ft_core::rng::SplitMix64;

/// A placement of `n` processors (indexed `0..n`) at distinct points of a
/// bounding cuboid.
#[derive(Clone, Debug)]
pub struct Placement {
    positions: Vec<[f64; 3]>,
    bounds: Cuboid,
}

impl Placement {
    /// Wrap explicit positions.
    ///
    /// # Panics
    /// If any position lies outside the bounds, or two positions coincide
    /// (coincident processors cannot be separated by cutting planes).
    pub fn new(positions: Vec<[f64; 3]>, bounds: Cuboid) -> Self {
        for (i, p) in positions.iter().enumerate() {
            assert!(bounds.contains(*p), "processor {i} at {p:?} outside bounds");
        }
        let mut sorted: Vec<[f64; 3]> = positions.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        for w in sorted.windows(2) {
            assert!(w[0] != w[1], "coincident processors at {:?}", w[0]);
        }
        Placement { positions, bounds }
    }

    /// Number of processors.
    #[inline]
    pub fn n(&self) -> usize {
        self.positions.len()
    }

    /// Position of processor `i`.
    #[inline]
    pub fn pos(&self, i: usize) -> [f64; 3] {
        self.positions[i]
    }

    /// All positions.
    #[inline]
    pub fn positions(&self) -> &[[f64; 3]] {
        &self.positions
    }

    /// The bounding cuboid.
    #[inline]
    pub fn bounds(&self) -> Cuboid {
        self.bounds
    }

    /// Volume of the bounding cuboid (the network's hardware volume `v`).
    pub fn volume(&self) -> f64 {
        self.bounds.volume()
    }

    /// `n` processors on a regular 3-D grid filling a cube — the placement a
    /// 3-D mesh network would use, and a convenient default for "network R
    /// occupies a cube of volume v".
    ///
    /// `spacing` is the lattice constant (≥ 1 in the unit-wire model).
    pub fn grid3d(n: usize, spacing: f64) -> Self {
        assert!(n >= 1 && spacing > 0.0);
        let side_count = (n as f64).cbrt().ceil() as usize;
        let side = side_count as f64 * spacing;
        let mut positions = Vec::with_capacity(n);
        'outer: for z in 0..side_count {
            for y in 0..side_count {
                for x in 0..side_count {
                    if positions.len() == n {
                        break 'outer;
                    }
                    positions.push([
                        (x as f64 + 0.5) * spacing,
                        (y as f64 + 0.5) * spacing,
                        (z as f64 + 0.5) * spacing,
                    ]);
                }
            }
        }
        Placement::new(positions, Cuboid::cube(side))
    }

    /// `n` processors on a planar √n × √n grid at height 0.5 inside a cube —
    /// the placement of a 2-D mesh (or planar finite-element network) built
    /// in 3-space.
    pub fn grid2d(n: usize, spacing: f64) -> Self {
        assert!(n >= 1 && spacing > 0.0);
        let side_count = (n as f64).sqrt().ceil() as usize;
        let side = side_count as f64 * spacing;
        let mut positions = Vec::with_capacity(n);
        'outer: for y in 0..side_count {
            for x in 0..side_count {
                if positions.len() == n {
                    break 'outer;
                }
                positions.push([(x as f64 + 0.5) * spacing, (y as f64 + 0.5) * spacing, 0.5]);
            }
        }
        Placement::new(
            positions,
            Cuboid::with_sides([side, side, 1.0_f64.max(spacing)]),
        )
    }

    /// Uniformly random distinct positions in a cube of the given side
    /// (rejection-free: grid-jittered so distinctness is guaranteed).
    pub fn random_in_cube(n: usize, side: f64, rng: &mut SplitMix64) -> Self {
        assert!(n >= 1 && side > 0.0);
        let cells = (n as f64).cbrt().ceil() as usize;
        let cell = side / cells as f64;
        let mut slots: Vec<usize> = (0..cells * cells * cells).collect();
        rng.shuffle(&mut slots[..]);
        let positions = slots[..n]
            .iter()
            .map(|&s| {
                let x = s % cells;
                let y = (s / cells) % cells;
                let z = s / (cells * cells);
                [
                    (x as f64 + rng.gen_range(0.25..0.75)) * cell,
                    (y as f64 + rng.gen_range(0.25..0.75)) * cell,
                    (z as f64 + rng.gen_range(0.25..0.75)) * cell,
                ]
            })
            .collect();
        Placement::new(positions, Cuboid::cube(side))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid3d_dimensions() {
        let p = Placement::grid3d(64, 1.0);
        assert_eq!(p.n(), 64);
        assert_eq!(p.volume(), 64.0);
        for i in 0..64 {
            assert!(p.bounds().contains(p.pos(i)));
        }
    }

    #[test]
    fn grid3d_non_cube_count() {
        let p = Placement::grid3d(10, 2.0);
        assert_eq!(p.n(), 10);
        // 10 procs need a 3×3×3 lattice: side 6.
        assert_eq!(p.bounds().side(0), 6.0);
    }

    #[test]
    fn grid2d_is_flat() {
        let p = Placement::grid2d(16, 1.0);
        assert_eq!(p.n(), 16);
        for i in 0..16 {
            assert_eq!(p.pos(i)[2], 0.5);
        }
        assert_eq!(p.bounds().side(0), 4.0);
    }

    #[test]
    #[should_panic(expected = "coincident")]
    fn rejects_coincident() {
        let _ = Placement::new(vec![[0.5, 0.5, 0.5], [0.5, 0.5, 0.5]], Cuboid::cube(1.0));
    }

    #[test]
    #[should_panic(expected = "outside bounds")]
    fn rejects_out_of_bounds() {
        let _ = Placement::new(vec![[2.0, 0.0, 0.0]], Cuboid::cube(1.0));
    }

    #[test]
    fn random_placement_distinct() {
        let mut rng = ft_core::rng::SplitMix64::seed_from_u64(77);
        let p = Placement::random_in_cube(100, 10.0, &mut rng);
        assert_eq!(p.n(), 100);
    }
}
