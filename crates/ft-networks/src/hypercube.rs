//! The Boolean hypercube: `n = 2^d` processors, neighbors differ in one
//! address bit, dimension-order routing. Physically it is the expensive
//! network of §I: bisection `n/2` forces volume `Ω(n^(3/2))`, so we place
//! its processors in a cube of side `√n` (spacing `n^(1/6)`).

use crate::traits::FixedConnectionNetwork;
use ft_layout::Placement;

/// A hypercube on `n = 2^d` processors.
#[derive(Clone, Copy, Debug)]
pub struct Hypercube {
    d: u32,
}

impl Hypercube {
    /// Hypercube of dimension `d` (so `n = 2^d`).
    pub fn new(d: u32) -> Self {
        assert!((1..=26).contains(&d), "dimension out of simulable range");
        Hypercube { d }
    }

    /// Build from a processor count (must be a power of two).
    pub fn with_n(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2);
        Hypercube::new(n.trailing_zeros())
    }

    /// Dimension `d = lg n`.
    pub fn dim(&self) -> u32 {
        self.d
    }
}

impl FixedConnectionNetwork for Hypercube {
    fn name(&self) -> String {
        format!("hypercube(d={})", self.d)
    }

    fn n(&self) -> usize {
        1usize << self.d
    }

    fn degree(&self) -> usize {
        self.d as usize
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        (0..self.d).map(|b| u ^ (1usize << b)).collect()
    }

    fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        // Dimension-order: fix differing bits from LSB to MSB.
        let mut path = vec![src];
        let mut cur = src;
        for b in 0..self.d {
            let bit = 1usize << b;
            if (cur ^ dst) & bit != 0 {
                cur ^= bit;
                path.push(cur);
            }
        }
        path
    }

    fn placement(&self) -> Placement {
        // Volume n^(3/2): cube of side √n ⇒ lattice spacing n^(1/6).
        let n = self.n() as f64;
        Placement::grid3d(self.n(), n.powf(1.0 / 6.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_all_routes;

    #[test]
    fn structure() {
        let h = Hypercube::new(4);
        assert_eq!(h.n(), 16);
        assert_eq!(h.degree(), 4);
        assert_eq!(h.neighbors(0), vec![1, 2, 4, 8]);
        assert_eq!(h.neighbors(5).len(), 4);
    }

    #[test]
    fn routes_are_valid_and_shortest() {
        let h = Hypercube::new(4);
        check_all_routes(&h).unwrap();
        for s in 0..16usize {
            for d in 0..16usize {
                let hops = h.route(s, d).len() - 1;
                assert_eq!(hops, (s ^ d).count_ones() as usize, "not shortest {s}->{d}");
            }
        }
    }

    #[test]
    fn volume_is_n_to_three_halves() {
        let h = Hypercube::new(6); // n = 64
        let v = h.volume();
        let want = 64f64.powf(1.5);
        assert!(v >= want * 0.9 && v <= want * 1.5, "v = {v}, want ≈ {want}");
    }

    #[test]
    fn with_n_roundtrip() {
        assert_eq!(Hypercube::with_n(128).dim(), 7);
    }
}
