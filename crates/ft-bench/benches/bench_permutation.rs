//! Criterion bench for E9: permutation routing, fat-tree vs Beneš looping.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_core::FatTree;
use ft_networks::benes::realize_benes;
use ft_sched::schedule_theorem1;
use ft_workloads::random_permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_permutation(c: &mut Criterion) {
    let n = 1024u32;
    let mut rng = StdRng::seed_from_u64(4);
    let msgs = random_permutation(n, &mut rng);
    let mut perm = vec![0usize; n as usize];
    for m in &msgs {
        perm[m.src.idx()] = m.dst.idx();
    }
    c.bench_function("benes_looping_1024", |b| b.iter(|| realize_benes(&perm).unwrap()));
    let ft = FatTree::universal(n, n as u64);
    c.bench_function("fat_tree_perm_schedule_1024", |b| {
        b.iter(|| schedule_theorem1(&ft, &msgs))
    });
}

criterion_group!(benches, bench_permutation);
criterion_main!(benches);
