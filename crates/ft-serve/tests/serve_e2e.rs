//! End-to-end serve tests over real TCP on the loopback interface: spawn
//! the server, drive it with the bench client, and check verification,
//! determinism, backpressure, and dead-client reaping.

use ft_serve::client::{bench, BenchConfig, BenchMode};
use ft_serve::proto::Engine;
use ft_serve::server::{spawn, ServerConfig};

fn server_cfg() -> ServerConfig {
    ServerConfig {
        n: 64,
        w: 16,
        slots: 4,
        window_us: 200,
        inflight: 64,
        idle_ms: 5_000,
        max_requests: 0,
        addr: "127.0.0.1:0".to_string(),
        metrics: true,
        metrics_addr: None,
    }
}

fn client_cfg(addr: &str) -> BenchConfig {
    BenchConfig {
        addr: addr.to_string(),
        n: 64,
        w: 16,
        clients: 3,
        requests: 60,
        messages: 24,
        seed: 42,
        engine: Engine::Schedule,
        mode: BenchMode::Closed,
        verify: true,
    }
}

#[test]
fn closed_loop_serves_verified_responses() {
    for engine in [Engine::Schedule, Engine::Online] {
        let server = spawn(server_cfg()).expect("spawn server");
        let addr = server.addr().to_string();
        let mut cfg = client_cfg(&addr);
        cfg.engine = engine;
        let r = bench(&cfg).expect("bench run");
        assert_eq!(r.sent, 60, "{engine:?}");
        assert_eq!(r.ok, 60, "{engine:?}: every request answered");
        assert_eq!(r.busy, 0, "{engine:?}");
        assert_eq!(r.errors, 0, "{engine:?}");
        assert_eq!(r.verified, 60, "{engine:?}");
        assert_eq!(
            r.mismatches, 0,
            "{engine:?}: served frames must match solo recomputation"
        );
        let stats = server.stop();
        assert_eq!(stats.served, 60, "{engine:?}");
        assert!(stats.batches > 0, "{engine:?}");
    }
}

#[test]
fn response_fingerprint_is_deterministic_across_runs_and_client_counts() {
    // The same (seed, total-requests) workload split across different
    // client counts and pipeline depths must yield the same Resp payload
    // set. resp_fnv is an order-independent fold, so equality means the
    // *contents* matched, regardless of coalescing boundaries.
    //
    // Note the workload is a function of (seed, client, index), so the
    // per-client share must match across runs: keep clients fixed while
    // varying depth/window, and compare fixed-client runs twice.
    let mut fnvs = Vec::new();
    for (depth, window_us) in [(1usize, 50u64), (4, 500), (8, 2_000)] {
        let mut scfg = server_cfg();
        scfg.window_us = window_us;
        let server = spawn(scfg).expect("spawn server");
        let mut cfg = client_cfg(server.addr().to_string().as_str());
        cfg.clients = 2;
        cfg.requests = 40;
        cfg.verify = false;
        cfg.mode = if depth == 1 {
            BenchMode::Closed
        } else {
            BenchMode::Open { depth }
        };
        let r = bench(&cfg).expect("bench run");
        assert_eq!(r.ok, 40);
        assert_eq!(r.busy + r.errors, 0);
        fnvs.push(r.resp_fnv);
        server.stop();
    }
    assert!(
        fnvs.windows(2).all(|w| w[0] == w[1]),
        "resp fingerprints diverged across interleavings: {fnvs:?}"
    );
}

#[test]
fn burst_overload_gets_structured_busy_rejects() {
    // A tiny in-flight budget plus a wide-open burst must trip admission
    // control: some requests bounce with Busy, none hang, none error.
    let mut scfg = server_cfg();
    scfg.inflight = 2;
    scfg.window_us = 5_000;
    let server = spawn(scfg).expect("spawn server");
    let mut cfg = client_cfg(server.addr().to_string().as_str());
    cfg.clients = 2;
    cfg.requests = 80;
    cfg.verify = true;
    cfg.mode = BenchMode::Burst { size: 40 };
    let r = bench(&cfg).expect("bench run");
    assert_eq!(r.sent, 80);
    assert_eq!(r.ok + r.busy, 80, "every request answered or rejected");
    assert!(r.busy > 0, "overload must produce Busy rejects");
    assert_eq!(r.errors, 0);
    assert_eq!(r.mismatches, 0, "accepted requests still verify");
    let stats = server.stop();
    assert_eq!(stats.served, r.ok);
    assert_eq!(stats.busy, r.busy);
}

#[test]
fn dead_client_is_reaped_and_server_keeps_serving() {
    let mut scfg = server_cfg();
    scfg.idle_ms = 100;
    let server = spawn(scfg).expect("spawn server");
    let addr = server.addr().to_string();
    // A client that handshakes then goes silent...
    let mut dead = client_cfg(&addr);
    dead.clients = 1;
    dead.requests = 0;
    dead.mode = BenchMode::Dead { hold_ms: 400 };
    let dead_handle = {
        let dead = dead.clone();
        std::thread::spawn(move || bench(&dead))
    };
    // ...must not stall live clients.
    let mut live = client_cfg(&addr);
    live.clients = 2;
    live.requests = 30;
    let r = bench(&live).expect("live bench");
    assert_eq!(r.ok, 30);
    assert_eq!(r.mismatches, 0);
    dead_handle
        .join()
        .expect("dead client thread")
        .expect("dead client connects cleanly");
    let stats = server.stop();
    assert_eq!(stats.served, 30);
}

#[test]
fn shape_mismatch_is_rejected_at_handshake() {
    let server = spawn(server_cfg()).expect("spawn server");
    let mut cfg = client_cfg(server.addr().to_string().as_str());
    cfg.n = 128; // server is n=64
    cfg.clients = 1;
    cfg.requests = 4;
    let err = bench(&cfg).expect_err("mismatched shape must fail the handshake");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    server.stop();
}

#[test]
fn max_requests_stops_the_server() {
    let mut scfg = server_cfg();
    scfg.max_requests = 20;
    let server = spawn(scfg).expect("spawn server");
    let mut cfg = client_cfg(server.addr().to_string().as_str());
    cfg.clients = 1;
    cfg.requests = 20;
    let r = bench(&cfg).expect("bench run");
    assert_eq!(r.ok, 20);
    server.wait();
}
