//! Permutation workloads: every processor sends exactly one message and
//! receives exactly one.

use ft_core::rng::SplitMix64;
use ft_core::{Message, MessageSet};

/// A uniformly random permutation on `n` processors.
pub fn random_permutation(n: u32, rng: &mut SplitMix64) -> MessageSet {
    let mut targets: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut targets);
    (0..n)
        .map(|i| Message::new(i, targets[i as usize]))
        .collect()
}

/// Bit-reversal: processor `b_{k−1}…b_1b_0` sends to `b_0b_1…b_{k−1}`.
/// A classic adversary for dimension-order routing on meshes.
///
/// # Panics
/// If `n` is not a power of two.
pub fn bit_reversal(n: u32) -> MessageSet {
    assert!(n.is_power_of_two());
    let k = n.trailing_zeros();
    (0..n)
        .map(|i| {
            let j = i.reverse_bits() >> (32 - k);
            Message::new(i, j)
        })
        .collect()
}

/// Matrix transpose on a √n × √n index space: `(r, c) → (c, r)`.
///
/// # Panics
/// If `n` is not a perfect square.
pub fn transpose(n: u32) -> MessageSet {
    let side = (n as f64).sqrt().round() as u32;
    assert_eq!(side * side, n, "transpose needs a perfect square");
    (0..n)
        .map(|i| {
            let (r, c) = (i / side, i % side);
            Message::new(i, c * side + r)
        })
        .collect()
}

/// Perfect shuffle: `i → 2i mod (n−1)` (with `n−1 → n−1`), the Stone/
/// Schwartz ultracomputer permutation.
///
/// # Panics
/// If `n < 2` or `n` is not a power of two.
pub fn perfect_shuffle(n: u32) -> MessageSet {
    assert!(n.is_power_of_two() && n >= 2);
    (0..n)
        .map(|i| {
            let j = if i == n - 1 { i } else { (2 * i) % (n - 1) };
            Message::new(i, j)
        })
        .collect()
}

/// Bit-complement: `i → n−1−i`; every message crosses the root of a
/// fat-tree — the worst one-to-one pattern for tree bisection.
pub fn bit_complement(n: u32) -> MessageSet {
    (0..n).map(|i| Message::new(i, n - 1 - i)).collect()
}

/// Check a message set is a permutation (test/bench helper).
pub fn is_permutation(m: &MessageSet, n: u32) -> bool {
    if m.len() != n as usize {
        return false;
    }
    let mut src = vec![false; n as usize];
    let mut dst = vec![false; n as usize];
    for msg in m {
        if msg.src.0 >= n || msg.dst.0 >= n || src[msg.src.idx()] || dst[msg.dst.idx()] {
            return false;
        }
        src[msg.src.idx()] = true;
        dst[msg.dst.idx()] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_produce_permutations() {
        let n = 64;
        let mut rng = SplitMix64::seed_from_u64(31);
        assert!(is_permutation(&random_permutation(n, &mut rng), n));
        assert!(is_permutation(&bit_reversal(n), n));
        assert!(is_permutation(&transpose(n), n));
        assert!(is_permutation(&perfect_shuffle(n), n));
        assert!(is_permutation(&bit_complement(n), n));
    }

    #[test]
    fn bit_reversal_fixed_points() {
        let m = bit_reversal(8);
        // 0b000→0b000, 0b010→0b010, 0b101→0b101, 0b111→0b111
        let fixed: Vec<u32> = m.iter().filter(|x| x.is_local()).map(|x| x.src.0).collect();
        assert_eq!(fixed, vec![0, 2, 5, 7]);
    }

    #[test]
    fn transpose_diagonal_fixed() {
        let m = transpose(16);
        for msg in &m {
            let (r, c) = (msg.src.0 / 4, msg.src.0 % 4);
            assert_eq!(msg.dst.0, c * 4 + r);
        }
    }

    #[test]
    fn complement_crosses_root() {
        let m = bit_complement(16);
        for msg in &m {
            // src and dst in different halves.
            assert_ne!(msg.src.0 < 8, msg.dst.0 < 8);
        }
    }

    #[test]
    fn shuffle_is_rotation_of_bits() {
        let m = perfect_shuffle(8);
        // 3 = 0b011 → 6 = 0b110 (left rotate)
        assert_eq!(m.as_slice()[3].dst.0, 6);
        assert_eq!(m.as_slice()[7].dst.0, 7);
    }

    #[test]
    fn is_permutation_rejects_bad_sets() {
        let m: MessageSet = [Message::new(0, 1), Message::new(1, 1)]
            .into_iter()
            .collect();
        assert!(!is_permutation(&m, 2));
        assert!(!is_permutation(&MessageSet::new(), 2));
    }
}
