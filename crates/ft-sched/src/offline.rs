//! Theorem 1 (§III): off-line scheduling of an arbitrary message set `M` in
//! `d ≤ 2·λ(M)·⌈lg n⌉` delivery cycles.
//!
//! The scheduler processes the tree level by level. At each node it takes
//! the messages whose LCA is that node, separately for each crossing
//! direction, and repeatedly applies the even splitter until every part is a
//! one-cycle message set. Left-to-right and right-to-left parts at a node
//! use disjoint channels and are routed in the same delivery cycles; so do
//! all nodes at the same level (their subtrees are disjoint).
//!
//! The heavy lifting lives in [`crate::arena::SchedArena`]: messages are
//! counting-sorted into flat per-(node, direction) buckets, the split
//! recursion permutes one index array in place, and the matching-and-tracing
//! splitter runs over packed, reusable end tables — no `Vec<Message>` subset
//! or intermediate `MessageSet` is materialized per recursion level. The
//! original clone-happy implementation is retained in [`crate::reference`]
//! and `tests/golden_scheduler.rs` pins the two to identical output.

use crate::arena::SchedArena;
use crate::schedule::Schedule;
use ft_core::{FatTree, MessageSet};

/// Diagnostics from [`schedule_theorem1`].
#[derive(Clone, Debug, Default)]
pub struct Theorem1Stats {
    /// Number of delivery cycles contributed by each level (level 0 first).
    pub cycles_per_level: Vec<usize>,
    /// λ(M) of the input on the tree.
    pub load_factor: f64,
    /// Total delivery cycles `d`.
    pub total_cycles: usize,
}

impl Theorem1Stats {
    /// The paper's upper bound `2·⌈λ(M)⌉·⌈lg n⌉` for this run
    /// (with λ < 1 rounded up to 1 when the set is nonempty).
    pub fn paper_bound(&self, ft: &FatTree) -> usize {
        let lam = self.load_factor.max(1.0).ceil() as usize;
        2 * lam * ft.height().max(1) as usize
    }
}

/// Schedule `m` on `ft` per Theorem 1. Returns the schedule and statistics.
///
/// The schedule is guaranteed valid: `schedule.validate(ft, m)` holds, and
/// `schedule.num_cycles() ≤ 2·⌈λ(M)⌉·⌈lg n⌉` (cycles for empty levels are
/// skipped, so the measured count is usually far below the bound).
///
/// One-shot convenience over [`SchedArena`]; callers scheduling many sets on
/// one tree should hold an arena and call [`SchedArena::schedule`] to reuse
/// its buffers.
///
/// ```
/// use ft_core::{FatTree, Message, MessageSet};
/// use ft_sched::schedule_theorem1;
/// let ft = FatTree::universal(16, 4);
/// let m: MessageSet = (0..16).map(|i| Message::new(i, 15 - i)).collect();
/// let (schedule, stats) = schedule_theorem1(&ft, &m);
/// schedule.validate(&ft, &m).unwrap();
/// assert!(schedule.num_cycles() <= stats.paper_bound(&ft));
/// ```
pub fn schedule_theorem1(ft: &FatTree, m: &MessageSet) -> (Schedule, Theorem1Stats) {
    SchedArena::new(ft).schedule(ft, m, 1)
}

/// [`schedule_theorem1`] with the per-node split work of each tree level
/// sharded over `threads` scoped threads. Distinct nodes at one level own
/// disjoint message sets and channels, so the parallelism is embarrassing;
/// the parts are merged in deterministic (node, direction) order and the
/// schedule is **byte-identical** for every thread count.
pub fn schedule_theorem1_threads(
    ft: &FatTree,
    m: &MessageSet,
    threads: usize,
) -> (Schedule, Theorem1Stats) {
    SchedArena::new(ft).schedule(ft, m, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::{lg, CapacityProfile, Message};

    fn check(ft: &FatTree, m: &MessageSet) -> Theorem1Stats {
        let (s, stats) = schedule_theorem1(ft, m);
        s.validate(ft, m).expect("schedule must be valid");
        assert_eq!(stats.total_cycles, s.num_cycles());
        // Theorem 1 bound.
        if !m.is_empty() {
            assert!(
                s.num_cycles() <= stats.paper_bound(ft),
                "d = {} exceeds 2·λ·lg n = {}",
                s.num_cycles(),
                stats.paper_bound(ft)
            );
            // Trivial lower bound d ≥ ⌈λ⌉.
            assert!(s.num_cycles() as f64 >= stats.load_factor.ceil());
        }
        stats
    }

    #[test]
    fn empty_set() {
        let t = FatTree::new(8, CapacityProfile::Constant(1));
        let (s, _) = schedule_theorem1(&t, &MessageSet::new());
        assert_eq!(s.num_cycles(), 0);
        s.validate(&t, &MessageSet::new()).unwrap();
    }

    #[test]
    fn local_messages_only() {
        let t = FatTree::new(8, CapacityProfile::Constant(1));
        let m: MessageSet = (0..8).map(|i| Message::new(i, i)).collect();
        let (s, _) = schedule_theorem1(&t, &m);
        assert_eq!(s.num_cycles(), 1);
        s.validate(&t, &m).unwrap();
    }

    #[test]
    fn one_cycle_permutation_on_fat_capacities() {
        let n = 32u32;
        let t = FatTree::new(n, CapacityProfile::FullDoubling);
        let m: MessageSet = (0..n).map(|i| Message::new(i, n - 1 - i)).collect();
        let stats = check(&t, &m);
        assert!((stats.load_factor - 1.0).abs() < 1e-9);
        // λ = 1 ⇒ should need very few cycles (at most a couple per level).
        assert!(stats.total_cycles <= 2 * lg(n as u64) as usize);
    }

    #[test]
    fn skinny_tree_hotspot() {
        // All processors send to processor 0 on a capacity-1 tree: λ = n−1
        // at the destination leaf channel; schedule length must sit between
        // λ and 2λ·lg n.
        let n = 16u32;
        let t = FatTree::new(n, CapacityProfile::Constant(1));
        let m: MessageSet = (1..n).map(|i| Message::new(i, 0)).collect();
        let stats = check(&t, &m);
        assert_eq!(stats.load_factor, (n - 1) as f64);
        assert!(stats.total_cycles >= (n - 1) as usize);
    }

    #[test]
    fn cyclic_shift_universal_tree() {
        let n = 64u32;
        let t = FatTree::universal(n, 16);
        let m: MessageSet = (0..n).map(|i| Message::new(i, (i + 1) % n)).collect();
        check(&t, &m);
    }

    #[test]
    fn adversarial_cross_root_on_universal_tree() {
        // Everybody crosses the root: i → i + n/2 (mod n).
        let n = 64u32;
        for w in [8u64, 16, 32, 64] {
            let t = FatTree::universal(n, w);
            let m: MessageSet = (0..n).map(|i| Message::new(i, (i + n / 2) % n)).collect();
            let stats = check(&t, &m);
            // Every message crosses the root, so the root channel alone
            // forces λ ≥ (n/2)/w.
            assert!(stats.load_factor >= (n as f64 / 2.0 / w as f64) - 1e-9);
        }
    }

    #[test]
    fn random_k_relation_stress() {
        let n = 64u32;
        let t = FatTree::universal(n, 16);
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for k in [1usize, 2, 4, 8] {
            let m: MessageSet = (0..n)
                .flat_map(|i| {
                    (0..k)
                        .map(|_| Message::new(i, (next() % n as u64) as u32))
                        .collect::<Vec<_>>()
                })
                .collect();
            check(&t, &m);
        }
    }

    #[test]
    fn cycles_per_level_sums_to_total_without_locals() {
        let n = 32u32;
        let t = FatTree::universal(n, 8);
        let m: MessageSet = (0..n).map(|i| Message::new(i, (i * 7 + 3) % n)).collect();
        let (s, stats) = schedule_theorem1(&t, &m);
        let sum: usize = stats.cycles_per_level.iter().sum();
        assert_eq!(sum, s.num_cycles());
    }

    #[test]
    fn threaded_wrapper_matches_serial() {
        let n = 64u32;
        let t = FatTree::universal(n, 16);
        let m: MessageSet = (0..2 * n)
            .map(|i| Message::new(i % n, (i * 13 + 7) % n))
            .collect();
        let (s1, st1) = schedule_theorem1(&t, &m);
        for threads in [2usize, 4] {
            let (s, st) = schedule_theorem1_threads(&t, &m, threads);
            s.validate(&t, &m).unwrap();
            assert_eq!(s.num_cycles(), s1.num_cycles());
            for (a, b) in s.cycles().iter().zip(s1.cycles()) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
            assert_eq!(st.cycles_per_level, st1.cycles_per_level);
        }
    }
}
