//! The Beneš rearrangeable permutation network and Waksman's looping
//! algorithm for setting its switches.
//!
//! §VI compares universal fat-trees against "classical permutation
//! networks, which all require Ω(n^(3/2)) volume": a max-volume universal
//! fat-tree routes any permutation off-line in O(lg n) time, matching Beneš
//! networks. The paper's even-splitting proof for Theorem 1 is itself
//! "reminiscent of switch setting in a Beneš network \[34\]" — implementing
//! both makes the kinship concrete.
//!
//! A Beneš network on `n = 2^k` terminals has `2k − 1` ranks of `n/2`
//! binary switches. The looping algorithm 2-colors the messages so that the
//! two recursive half-size subnetworks each receive a permutation.

/// Statistics of a routed Beneš network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenesStats {
    /// Terminals `n`.
    pub n: usize,
    /// Total binary switches set: `n·lg n − n/2`.
    pub switches: usize,
    /// Depth in switch ranks: `2·lg n − 1`.
    pub depth: usize,
}

/// Route `perm` through a Beneš network via the looping algorithm,
/// verifying consistency along the way.
///
/// `perm[i] = j` means input terminal `i` must reach output terminal `j`.
///
/// ```
/// use ft_networks::benes::realize_benes;
/// let stats = realize_benes(&[3, 1, 0, 2]).unwrap();
/// assert_eq!(stats.depth, 3);     // 2·lg 4 − 1
/// assert_eq!(stats.switches, 6);  // (2·lg 4 − 1)·4/2
/// ```
///
/// # Errors
/// Returns `Err` if `perm` is not a permutation of `0..n` or `n` is not a
/// power of two ≥ 2.
pub fn realize_benes(perm: &[usize]) -> Result<BenesStats, String> {
    let n = perm.len();
    if n < 2 || !n.is_power_of_two() {
        return Err(format!("n = {n} must be a power of two ≥ 2"));
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return Err("not a permutation".into());
        }
        seen[p] = true;
    }
    let mut switches = 0usize;
    let depth = route_rec(perm, &mut switches)?;
    Ok(BenesStats { n, switches, depth })
}

/// Recursively route; returns the depth of the (sub)network.
fn route_rec(perm: &[usize], switches: &mut usize) -> Result<usize, String> {
    let n = perm.len();
    if n == 2 {
        *switches += 1;
        return Ok(1);
    }
    let half = n / 2;

    // color[i] ∈ {0,1}: which subnetwork input terminal i uses.
    // Constraints: inputs 2t, 2t+1 get different colors; likewise the two
    // inputs mapping to outputs 2t, 2t+1.
    let mut color = vec![u8::MAX; n];
    let mut inv = vec![0usize; n];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    for start in 0..n {
        if color[start] != u8::MAX {
            continue;
        }
        // Loop: alternate input-switch and output-switch constraints.
        let mut i = start;
        let mut c = 0u8;
        loop {
            if color[i] != u8::MAX {
                if color[i] != c {
                    return Err("looping produced an odd cycle".into());
                }
                break;
            }
            color[i] = c;
            // Output-switch partner of i: the input j with perm[j] = perm[i] ^ 1
            // must take the other subnetwork.
            let j = inv[perm[i] ^ 1];
            if color[j] == u8::MAX {
                color[j] = 1 - c;
            } else if color[j] == c {
                return Err("output-switch conflict".into());
            }
            // Input-switch partner of j continues the loop with color c… its
            // color must be 1 − color[j] = c.
            i = j ^ 1;
            c = 1 - color[j];
        }
    }

    // Build sub-permutations: input switch t sends its color-c terminal to
    // sub-input t of subnetwork c; output switch u receives from sub-output
    // u of subnetwork c' where c' is the color of the terminal mapping there.
    let mut sub = [vec![usize::MAX; half], vec![usize::MAX; half]];
    for i in 0..n {
        let c = color[i] as usize;
        let t = i / 2;
        let u = perm[i] / 2;
        if sub[c][t] != usize::MAX {
            return Err(format!(
                "input switch {t} sends both terminals to subnet {c}"
            ));
        }
        sub[c][t] = u;
    }
    // Each sub must be a permutation of 0..half (the consistency check).
    for s in &sub {
        let mut seen = vec![false; half];
        for &u in s {
            if u == usize::MAX || seen[u] {
                return Err("subnetwork routing is not a permutation".into());
            }
            seen[u] = true;
        }
    }

    *switches += n; // n/2 input + n/2 output switches at this level
    let d0 = route_rec(&sub[0], switches)?;
    let d1 = route_rec(&sub[1], switches)?;
    if d0 != d1 {
        return Err("subnetwork depths differ".into());
    }
    Ok(d0 + 2)
}

/// Switch count formula for a Beneš network on `n = 2^k` terminals:
/// `(2k − 1)·n/2 = n·lg n − n/2`.
pub fn benes_switch_count(n: usize) -> usize {
    let k = n.trailing_zeros() as usize;
    (2 * k - 1) * n / 2
}

/// Depth formula `2·lg n − 1`.
pub fn benes_depth(n: usize) -> usize {
    2 * n.trailing_zeros() as usize - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_routes() {
        let perm: Vec<usize> = (0..16).collect();
        let s = realize_benes(&perm).unwrap();
        assert_eq!(s.depth, benes_depth(16));
        assert_eq!(s.switches, benes_switch_count(16));
    }

    #[test]
    fn reversal_routes() {
        let perm: Vec<usize> = (0..32).rev().collect();
        let s = realize_benes(&perm).unwrap();
        assert_eq!(s.depth, 9);
    }

    #[test]
    fn all_permutations_of_8_route() {
        // The defining property of a rearrangeable network: every
        // permutation is realizable. 8! = 40320 — exhaustive.
        let mut perm: Vec<usize> = (0..8).collect();
        let mut count = 0;
        permute(&mut perm, 0, &mut |p| {
            realize_benes(p).unwrap_or_else(|e| panic!("failed on {p:?}: {e}"));
            count += 1;
        });
        assert_eq!(count, 40320);
    }

    fn permute(p: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == p.len() {
            f(p);
            return;
        }
        for i in k..p.len() {
            p.swap(k, i);
            permute(p, k + 1, f);
            p.swap(k, i);
        }
    }

    #[test]
    fn random_large_permutations() {
        let n = 1024usize;
        let mut perm: Vec<usize> = (0..n).collect();
        // Deterministic Fisher–Yates with an xorshift.
        let mut st = 0x1234_5678_9ABC_DEF0_u64;
        for i in (1..n).rev() {
            st ^= st << 13;
            st ^= st >> 7;
            st ^= st << 17;
            perm.swap(i, (st % (i as u64 + 1)) as usize);
        }
        let s = realize_benes(&perm).unwrap();
        assert_eq!(s.depth, 19);
        assert_eq!(s.switches, benes_switch_count(n));
    }

    #[test]
    fn rejects_non_permutation() {
        assert!(realize_benes(&[0, 0, 1, 2]).is_err());
        assert!(realize_benes(&[0, 1, 2]).is_err());
    }

    #[test]
    fn two_terminal_base_case() {
        let s = realize_benes(&[1, 0]).unwrap();
        assert_eq!(s.depth, 1);
        assert_eq!(s.switches, 1);
    }
}
