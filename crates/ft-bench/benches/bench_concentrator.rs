//! Criterion bench for E8: concentrator construction and routing.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_concentrator::{max_matching, Concentrator, PartialConcentrator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_concentrator(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let pc = PartialConcentrator::pippenger(768, &mut rng);
    let active: Vec<usize> = (0..pc.guaranteed()).map(|i| (i * 2) % 768).collect();
    c.bench_function("hopcroft_karp_768", |b| {
        b.iter(|| max_matching(pc.graph(), &active))
    });
    c.bench_function("route_768", |b| b.iter(|| pc.route(&active)));
}

criterion_group!(benches, bench_concentrator);
criterion_main!(benches);
