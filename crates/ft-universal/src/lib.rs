//! # ft-universal — the universality theorem, executable
//!
//! Theorem 10 (§VI): *let FT be a universal fat-tree on n processors
//! occupying a cube of volume v, and let R be an arbitrary routing network
//! on n processors occupying the same volume. Then there is an
//! identification of the processors of FT with those of R such that any
//! message set M deliverable by R in time t can be delivered by FT
//! (off-line) in time O(t·lg³ n).*
//!
//! This crate runs the proof as a pipeline:
//!
//! 1. take a competitor network `R` with its 3-D [`ft_layout::Placement`],
//! 2. build its cutting-plane decomposition tree (Theorem 5),
//! 3. balance it with pearl splitting (Theorem 8 / Corollary 9),
//! 4. identify `R`'s processors with fat-tree leaves in balanced-leaf order,
//! 5. build the universal fat-tree of volume `v`,
//! 6. measure: `t` = time `R` takes on a message set (store-and-forward
//!    simulation), `λ(M)` = the translated load factor on the fat-tree,
//!    `d` = Theorem 1 schedule length, and the end-to-end slowdown.
//!
//! The modules: [`identify`] (steps 1–5), [`bounds`] (the flux bounds the
//! proof extracts from the decomposition tree), [`pipeline`] (step 6).

pub mod bounds;
pub mod emulation;
pub mod identify;
pub mod pipeline;

pub use emulation::Emulation;
pub use identify::Identification;
pub use pipeline::{simulate_on_fat_tree, SimulationReport};
