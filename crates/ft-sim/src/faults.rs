//! Wire-fault injection (§VII: "problems of maintenance, fault tolerance,
//! clock distribution, and reliable power supply must be solved").
//!
//! The fat-tree's redundancy story is structural: a channel is a *bundle*
//! of interchangeable wires feeding a concentrator, so a dead wire just
//! shrinks the channel's capacity — no route recomputation, no spares
//! protocol. This module models exactly that: each wire dies independently
//! with probability `p` (deterministic per seed), a channel's effective
//! capacity is the count of surviving wires (floored at 1 so the tree stays
//! connected), and the retry machinery absorbs the rest.

use ft_core::{ChannelId, FatTree};

/// A deterministic wire-fault pattern.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultModel {
    /// Independent death probability per wire.
    pub dead_wire_fraction: f64,
    /// Seed for the per-wire coin flips.
    pub seed: u64,
}

impl FaultModel {
    /// No faults.
    pub fn none() -> Self {
        FaultModel {
            dead_wire_fraction: 0.0,
            seed: 0,
        }
    }

    /// Effective capacity of channel `c`: surviving wires, at least 1
    /// (a fully-dead channel would disconnect processors; the paper's
    /// fault-tolerance question presumes a connected machine).
    pub fn effective_cap(&self, ft: &FatTree, c: ChannelId) -> u64 {
        let cap = ft.cap(c);
        if self.dead_wire_fraction <= 0.0 {
            return cap;
        }
        let mut alive = 0u64;
        for wire in 0..cap {
            if !self.wire_dead(c, wire) {
                alive += 1;
            }
        }
        alive.max(1)
    }

    /// Is `wire` of channel `c` dead under this pattern?
    pub fn wire_dead(&self, c: ChannelId, wire: u64) -> bool {
        if self.dead_wire_fraction <= 0.0 {
            return false;
        }
        let h = splitmix(self.seed ^ ((c.index() as u64) << 32) ^ wire);
        // Map to [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.dead_wire_fraction
    }

    /// Fraction of total wires dead across the whole tree (diagnostic).
    pub fn measured_fraction(&self, ft: &FatTree) -> f64 {
        let mut dead = 0u64;
        let mut total = 0u64;
        for c in ft.channels() {
            for w in 0..ft.cap(c) {
                total += 1;
                dead += u64::from(self.wire_dead(c, w));
            }
        }
        dead as f64 / total.max(1) as f64
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::CapacityProfile;

    #[test]
    fn no_faults_full_capacity() {
        let ft = FatTree::universal(64, 16);
        let fm = FaultModel::none();
        for c in ft.channels() {
            assert_eq!(fm.effective_cap(&ft, c), ft.cap(c));
        }
        assert_eq!(fm.measured_fraction(&ft), 0.0);
    }

    #[test]
    fn fraction_tracks_probability() {
        let ft = FatTree::new(256, CapacityProfile::FullDoubling);
        let fm = FaultModel {
            dead_wire_fraction: 0.2,
            seed: 9,
        };
        let got = fm.measured_fraction(&ft);
        assert!((got - 0.2).abs() < 0.05, "measured fraction {got}");
    }

    #[test]
    fn effective_cap_never_zero() {
        let ft = FatTree::new(32, CapacityProfile::Constant(1));
        let fm = FaultModel {
            dead_wire_fraction: 0.95,
            seed: 3,
        };
        for c in ft.channels() {
            assert!(fm.effective_cap(&ft, c) >= 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ft = FatTree::universal(64, 32);
        let a = FaultModel {
            dead_wire_fraction: 0.3,
            seed: 7,
        };
        let b = FaultModel {
            dead_wire_fraction: 0.3,
            seed: 7,
        };
        let c = FaultModel {
            dead_wire_fraction: 0.3,
            seed: 8,
        };
        let caps = |fm: &FaultModel| -> Vec<u64> {
            ft.channels().map(|ch| fm.effective_cap(&ft, ch)).collect()
        };
        assert_eq!(caps(&a), caps(&b));
        assert_ne!(
            caps(&a),
            caps(&c),
            "different seeds should differ somewhere"
        );
    }
}
