//! The fat-tree switching node (Fig. 3).
//!
//! A node has input ports `U, L, R` (from parent, left child, right child)
//! and output ports `U, L, R`. Each output port is fed by a *selector* —
//! which ANDs the M bit with the current address bit (or its complement) to
//! decide which incoming wires hold messages destined for that port — and a
//! *concentrator switch* that maps those wires onto the (fewer) outgoing
//! wires. "Obviously, if there are more input messages than output wires,
//! some messages will be lost."

use ft_concentrator::{BipartiteGraph, Concentrator, Crossbar, MatchingArena};
use ft_core::rng::SplitMix64;

/// Which concentrator hardware the simulated machine uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchFlavor {
    /// Ideal crossbar concentrators (the §III assumption).
    Ideal,
    /// Pippenger partial concentrators (§IV hardware): O(1) components per
    /// wire, cascaded "outputs to inputs" when the concentration ratio
    /// exceeds a single stage's 2/3.
    Partial,
}

/// One output port of a node: a concentrator from `r` incoming wire slots
/// to `s = cap(out-channel)` outgoing wires.
pub enum PortSwitch {
    /// The ideal concentrator of §III: loses messages only on overload.
    Ideal(Crossbar),
    /// A cascade of bounded-degree bipartite stages (§IV).
    Partial {
        /// Stages, each shrinking the wire count by ≈ 2/3 (last lands on `s`).
        stages: Vec<BipartiteGraph>,
    },
}

impl PortSwitch {
    /// Create a port switch with `r` input slots and `s ≤ r` output wires.
    ///
    /// `Partial` stages are sampled with a seed derived from `(r, s)` so all
    /// same-shape ports share wiring, as a machine built from identical
    /// parts would.
    pub fn new(kind: SwitchFlavor, r: usize, s: usize) -> Self {
        let r = r.max(s).max(1);
        let s = s.max(1);
        match kind {
            SwitchFlavor::Ideal => PortSwitch::Ideal(Crossbar::new(r, s)),
            SwitchFlavor::Partial => {
                let mut rng = SplitMix64::seed_from_u64(0x5EED ^ ((r as u64) << 32) ^ s as u64);
                let mut stages = Vec::new();
                let mut width = r;
                while width > s {
                    // Shrink by 2/3 per stage, never below s. Input degree is
                    // capped so the configuration model has enough output
                    // stubs (din·width ≤ 9·next).
                    let next = s.max(width.div_ceil(3) * 2).min(width - 1).max(s);
                    let din = (9 * next / width).clamp(1, 6);
                    stages.push(BipartiteGraph::random_regular(
                        width, next, din, 9, &mut rng,
                    ));
                    width = next;
                }
                PortSwitch::Partial { stages }
            }
        }
    }

    /// Route the active input wires; returns `out[i] = Some(wire)` for
    /// concentrated inputs. Inputs beyond capacity — or unroutable ones in
    /// a partial concentrator — get `None` (lost, to be retried).
    ///
    /// Unlike [`Concentrator::route`], this degrades gracefully: when the
    /// full set cannot be concentrated it routes a maximal subset (what the
    /// hardware does — some wires win, the rest see congestion).
    pub fn concentrate(&self, active: &[usize]) -> Vec<Option<u32>> {
        self.concentrate_with(&mut MatchingArena::new(), active)
    }

    /// [`PortSwitch::concentrate`] with caller-supplied matching buffers:
    /// one [`MatchingArena`] serves every cascade stage (and, when the
    /// caller keeps it across calls, every bucket of every cycle).
    pub fn concentrate_with(
        &self,
        arena: &mut MatchingArena,
        active: &[usize],
    ) -> Vec<Option<u32>> {
        match self {
            PortSwitch::Ideal(cb) => {
                let s = cb.outputs();
                active
                    .iter()
                    .enumerate()
                    .map(|(i, _)| if i < s { Some(i as u32) } else { None })
                    .collect()
            }
            PortSwitch::Partial { stages } => {
                // Thread each surviving message through the stages; per
                // stage, the maximum matching decides who advances. The
                // survivor lists are compacted in place, so only the result
                // and two survivor vectors are allocated per call — the
                // matching itself runs entirely in the arena.
                let mut result: Vec<Option<u32>> = active.iter().map(|&w| Some(w as u32)).collect();
                let mut slots: Vec<usize> = (0..active.len()).collect();
                let mut wires: Vec<usize> = active.to_vec();
                for stage in stages {
                    arena.max_matching(stage, &wires);
                    let mut keep = 0usize;
                    for j in 0..slots.len() {
                        match arena.matched(j) {
                            Some(o) => {
                                result[slots[j]] = Some(o as u32);
                                slots[keep] = slots[j];
                                wires[keep] = o;
                                keep += 1;
                            }
                            None => result[slots[j]] = None,
                        }
                    }
                    slots.truncate(keep);
                    wires.truncate(keep);
                }
                result
            }
        }
    }

    /// Output wire count.
    pub fn outputs(&self) -> usize {
        match self {
            PortSwitch::Ideal(cb) => cb.outputs(),
            PortSwitch::Partial { stages } => stages.last().map_or(1, |g| g.outputs()),
        }
    }

    /// Hardware cost in components: crosspoints for the ideal switch, edges
    /// for the partial cascade (the §IV comparison).
    pub fn components(&self) -> usize {
        match self {
            PortSwitch::Ideal(cb) => cb.components(),
            PortSwitch::Partial { stages } => stages.iter().map(|g| g.num_edges()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_port_respects_capacity() {
        let p = PortSwitch::new(SwitchFlavor::Ideal, 8, 3);
        let out = p.concentrate(&[0, 2, 4, 6, 7]);
        let routed: Vec<_> = out.iter().flatten().collect();
        assert_eq!(routed.len(), 3);
        assert!(out[3].is_none() && out[4].is_none());
    }

    #[test]
    fn ideal_port_passes_underload() {
        let p = PortSwitch::new(SwitchFlavor::Ideal, 8, 5);
        let out = p.concentrate(&[1, 3]);
        assert!(out.iter().all(|o| o.is_some()));
        assert_ne!(out[0], out[1]);
    }

    #[test]
    fn partial_port_routes_most_light_loads() {
        let p = PortSwitch::new(SwitchFlavor::Partial, 24, 16);
        let out = p.concentrate(&[0, 5, 10, 15, 20]);
        let routed = out.iter().flatten().count();
        assert!(
            routed >= 4,
            "partial concentrator dropped too much: {routed}/5"
        );
        let mut wires: Vec<u32> = out.iter().flatten().copied().collect();
        wires.sort_unstable();
        wires.dedup();
        assert_eq!(wires.len(), routed);
    }

    #[test]
    fn partial_port_never_exceeds_outputs() {
        let p = PortSwitch::new(SwitchFlavor::Partial, 12, 4);
        let active: Vec<usize> = (0..12).collect();
        let routed = p.concentrate(&active).iter().flatten().count();
        assert!(routed <= 4);
    }

    #[test]
    fn steep_ratio_builds_multiple_stages() {
        let p = PortSwitch::new(SwitchFlavor::Partial, 64, 4);
        match &p {
            PortSwitch::Partial { stages } => assert!(stages.len() >= 3),
            _ => unreachable!(),
        }
        assert_eq!(p.outputs(), 4);
        // Still linear hardware: ≤ 6·width per stage with geometric widths
        // (≈ 20·r total), versus Θ(r·s) for a crossbar of the same job.
        assert!(p.components() <= 20 * 64, "components {}", p.components());
    }

    #[test]
    fn tiny_port_width_two_to_one() {
        let p = PortSwitch::new(SwitchFlavor::Partial, 2, 1);
        let out = p.concentrate(&[0, 1]);
        assert!(out.iter().flatten().count() <= 1);
        let out1 = p.concentrate(&[0]);
        // A 2→1 stage with din ≥ 1 connects both inputs to output 0.
        assert_eq!(out1.iter().flatten().count(), 1);
    }

    #[test]
    fn same_shape_ports_share_wiring() {
        let a = PortSwitch::new(SwitchFlavor::Partial, 16, 8);
        let b = PortSwitch::new(SwitchFlavor::Partial, 16, 8);
        let act = vec![0usize, 3, 9, 14];
        assert_eq!(a.concentrate(&act), b.concentrate(&act));
    }
}
