//! # ft-workloads — message-set generators
//!
//! The workloads that drive every experiment:
//!
//! * [`perms`] — permutations: random, bit-reversal, transpose, perfect
//!   shuffle, bit-complement (the §VI permutation-routing comparison and
//!   the classic adversaries of dimension-order routing),
//! * [`relations`] — random k-relations (each processor sends and receives
//!   ≈ k messages), the natural load-factor sweep for Theorem 1,
//! * [`locality`] — distance-decaying traffic: fat-trees route local
//!   messages locally "much as telephone communications are routed within
//!   an exchange without using more expensive trunk lines" (§II),
//! * [`fem`] — planar finite-element meshes (§I's motivating application:
//!   planar graphs have O(√n) bisection, so a hypercube wastes most of its
//!   bandwidth on them),
//! * [`hotspot`] — all-to-one and few-hot-destination traffic,
//! * [`adversarial`] — bisection stress: everything crosses the root,
//! * [`stream`] — lazy [`ft_core::MessageStream`] generators (pointwise
//!   seeded twins of the above plus bursty/incast/collective datacenter
//!   patterns) for million-leaf runs that never materialize the set.

pub mod adversarial;
pub mod fem;
pub mod hotspot;
pub mod locality;
pub mod parallel_algos;
pub mod perms;
pub mod relations;
pub mod stream;
pub mod topology;

pub use adversarial::cross_root;
pub use fem::FemGrid;
pub use hotspot::{all_to_one, hotspots};
pub use locality::{fraction_crossing_level, local_traffic};
pub use parallel_algos::{
    ascend_rounds, broadcast_rounds, cannon_rounds, descend_rounds, total_exchange,
};
pub use perms::{bit_complement, bit_reversal, perfect_shuffle, random_permutation, transpose};
pub use relations::{balanced_k_relation, random_k_relation};
pub use stream::{
    AllReduceStream, AllToAllStream, BurstyStream, HotspotStream, IncastStream, PermutationStream,
    RelationStream,
};
pub use topology::{PodAllReduce, PodAllToAll};
