//! A constructive three-dimensional layout of a universal fat-tree —
//! Theorem 4 made concrete.
//!
//! The paper proves the volume bound "essentially by the unrestricted
//! three-dimensional layout construction of Leighton and Rosenberg": lay
//! out the two child subtrees side by side, then stack the switching node's
//! Lemma 3 box on top, recursively. This module builds that layout with
//! explicit cuboids:
//!
//! * every subtree at level `k` occupies a box whose dimensions are derived
//!   bottom-up (children stacked along the currently-shortest axis to keep
//!   aspect ratios bounded),
//! * every switching node occupies a slab of volume `(C·m_k)^(3/2)`
//!   (Lemma 3 at `h = 1`, `C` components per incident wire) glued above its
//!   children,
//! * the channel between a node and its parent fits through the slab's
//!   `s×s` face automatically (`s² = C·m ≥ 2·cap(k)` — the wire-volume part
//!   of the VLSI model), keeping every box near-cubic.
//!
//! [`FatTreeLayout::build`] returns the per-level dimensions and total
//! volume; [`FatTreeLayout::realize_absolute`] materializes absolute,
//! provably disjoint cuboids for every node of a (small) tree.

use crate::cost::COMPONENTS_PER_WIRE;
use crate::geom::Cuboid;
use ft_core::FatTree;

/// The constructive layout of a fat-tree.
#[derive(Clone, Debug)]
pub struct FatTreeLayout {
    /// `level_dims[k]` = box dimensions of a subtree rooted at level `k`
    /// (index `L` = a single processor's unit cube).
    pub level_dims: Vec<[f64; 3]>,
    /// `slab_thickness[k]` = thickness of the node slab at level `k`
    /// (internal levels only).
    pub slab_thickness: Vec<f64>,
    /// Total bounding volume of the whole machine.
    pub volume: f64,
}

impl FatTreeLayout {
    /// Build the layout for `ft`.
    pub fn build(ft: &FatTree) -> Self {
        let height = ft.height() as usize;
        let mut level_dims = vec![[0.0f64; 3]; height + 1];
        let mut slab_thickness = vec![0.0f64; height];
        level_dims[height] = [1.0, 1.0, 1.0]; // a processor

        for k in (0..height).rev() {
            let child = level_dims[k + 1];
            // Stack the two children along the shortest axis.
            let ax = argmin(child);
            let mut dims = child;
            dims[ax] *= 2.0;

            // The node's Lemma 3 box at h = 1 is a cube of side
            // s = √(C·m); Lemma 3's h-freedom lets us reshape it, but
            // keeping it cubic keeps the whole machine's aspect bounded.
            // Pad the footprint up to s if the children are smaller, then
            // glue an s-thick slab across the footprint on the shortest
            // axis.
            let m = crate::cost::node_incident_wires(ft, k as u32) as f64;
            let s = (COMPONENTS_PER_WIRE * m).sqrt();
            let ax2 = argmin(dims);
            let f1 = (ax2 + 1) % 3;
            let f2 = (ax2 + 2) % 3;
            dims[f1] = dims[f1].max(s);
            dims[f2] = dims[f2].max(s);
            // Slab volume must hold the node: thickness = vol / footprint,
            // never more than s (footprint ≥ s²).
            let t = (COMPONENTS_PER_WIRE * m).powf(1.5) / (dims[f1] * dims[f2]);
            dims[ax2] += t;
            slab_thickness[k] = t;

            // Wire feasibility is automatic: the channel's 2·cap(k) wires
            // exit through the slab's s×s face and s² = C·m ≥ 2·cap(k).
            debug_assert!(s * s >= 2.0 * ft.cap_at_level(k as u32) as f64);
            level_dims[k] = dims;
        }

        let d0 = level_dims[0];
        FatTreeLayout {
            level_dims,
            slab_thickness,
            volume: d0[0] * d0[1] * d0[2],
        }
    }

    /// Aspect ratio of the whole machine: longest side / shortest side.
    pub fn aspect_ratio(&self) -> f64 {
        let d = self.level_dims[0];
        let max = d[0].max(d[1]).max(d[2]);
        let min = d[0].min(d[1]).min(d[2]);
        max / min
    }

    /// Materialize absolute cuboids: one per switching node (its slab) and
    /// one per processor. Only sensible for small trees (O(n) boxes).
    pub fn realize_absolute(&self, ft: &FatTree) -> Vec<(u32, Cuboid)> {
        let mut out = Vec::new();
        self.place(ft, 1, 0, [0.0; 3], &mut out);
        out
    }

    fn place(
        &self,
        ft: &FatTree,
        node: u32,
        level: usize,
        origin: [f64; 3],
        out: &mut Vec<(u32, Cuboid)>,
    ) {
        let dims = self.level_dims[level];
        if level == ft.height() as usize {
            out.push((node, cuboid_at(origin, dims)));
            return;
        }
        let child = self.level_dims[level + 1];
        let ax = argmin(child);
        // Children side by side along ax.
        let mut o2 = origin;
        o2[ax] += child[ax];
        self.place(ft, 2 * node, level + 1, origin, out);
        self.place(ft, 2 * node + 1, level + 1, o2, out);
        // The node slab spans the (possibly padded) footprint above the
        // children on the same axis build() extended.
        let mut stacked = child;
        stacked[ax] *= 2.0;
        let ax2 = argmin(stacked);
        let mut slab_origin = origin;
        slab_origin[ax2] += stacked[ax2];
        let mut slab_dims = dims;
        slab_dims[ax2] = dims[ax2] - stacked[ax2];
        if slab_dims[ax2] > 0.0 {
            out.push((node, cuboid_at(slab_origin, slab_dims)));
        }
    }
}

fn cuboid_at(origin: [f64; 3], dims: [f64; 3]) -> Cuboid {
    Cuboid {
        min: origin,
        max: [
            origin[0] + dims[0],
            origin[1] + dims[1],
            origin[2] + dims[2],
        ],
    }
}

fn argmin(d: [f64; 3]) -> usize {
    let mut best = 0;
    for a in 1..3 {
        if d[a] < d[best] {
            best = a;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::CapacityProfile;

    #[test]
    fn layout_volume_has_theorem4_shape() {
        // Ratio constructive/analytic stays in a constant band as n scales
        // with w = n^(2/3).
        let mut ratios = Vec::new();
        for &lgn in &[8u32, 10, 12, 14] {
            let n = 1u32 << lgn;
            let w = 1u64 << (2 * lgn / 3);
            let ft = FatTree::universal(n, w);
            let layout = FatTreeLayout::build(&ft);
            let law = crate::cost::theorem4_volume_law(n as u64, w);
            ratios.push(layout.volume / law);
        }
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min < 40.0,
            "constructive volume drifts from the Theorem 4 law: {ratios:?}"
        );
    }

    #[test]
    fn aspect_ratio_stays_bounded() {
        for &(n, w) in &[(256u32, 64u64), (1024, 128), (4096, 256)] {
            let ft = FatTree::universal(n, w);
            let layout = FatTreeLayout::build(&ft);
            // The greedy construction keeps the aspect ratio bounded by a
            // constant (Thompson's slicing argument from Lemma 3 could then
            // re-cube the box at a constant volume factor).
            assert!(
                layout.aspect_ratio() < 40.0,
                "n={n}: aspect ratio {} unbounded",
                layout.aspect_ratio()
            );
        }
    }

    #[test]
    fn realized_boxes_are_disjoint_and_contained() {
        let ft = FatTree::universal(64, 16);
        let layout = FatTreeLayout::build(&ft);
        let boxes = layout.realize_absolute(&ft);
        // 64 processors + 63 node slabs (some may be degenerate-thin).
        assert!(boxes.len() >= 64);
        let total = cuboid_at([0.0; 3], layout.level_dims[0]);
        for (id, b) in &boxes {
            assert!(contains(&total, b), "box of {id} escapes the machine");
        }
        for i in 0..boxes.len() {
            for j in (i + 1)..boxes.len() {
                assert!(
                    !overlaps(&boxes[i].1, &boxes[j].1),
                    "boxes of {} and {} overlap",
                    boxes[i].0,
                    boxes[j].0
                );
            }
        }
    }

    #[test]
    fn skinny_tree_layout_is_nearly_linear() {
        // Constant capacity 1: node slabs are O(1), so volume is O(n·polylog).
        let ft = FatTree::new(1024, CapacityProfile::Constant(1));
        let layout = FatTreeLayout::build(&ft);
        // Each unit switch occupies a constant (19·6)^(3/2) ≈ 1218 volume:
        // total is Θ(n) with that constant.
        assert!(
            layout.volume < 1024.0 * 2000.0,
            "skinny tree volume {} far above linear",
            layout.volume
        );
        assert!(
            layout.volume > 1024.0,
            "cannot be below one unit per processor"
        );
    }

    #[test]
    fn richer_tree_needs_more_volume() {
        let n = 1024u32;
        let poor = FatTreeLayout::build(&FatTree::universal(n, 64)).volume;
        let rich = FatTreeLayout::build(&FatTree::universal(n, 1024)).volume;
        assert!(rich > poor);
    }

    fn overlaps(a: &Cuboid, b: &Cuboid) -> bool {
        (0..3).all(|ax| a.min[ax] < b.max[ax] - 1e-9 && b.min[ax] < a.max[ax] - 1e-9)
    }

    fn contains(outer: &Cuboid, inner: &Cuboid) -> bool {
        (0..3).all(|ax| {
            inner.min[ax] >= outer.min[ax] - 1e-6 && inner.max[ax] <= outer.max[ax] + 1e-6
        })
    }
}
