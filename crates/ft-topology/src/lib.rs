//! # ft-topology — generalized fat-tree topologies
//!
//! The rest of the workspace models the paper's shape exactly: a complete
//! *binary* tree whose per-level channel capacities follow one of the §IV
//! laws. Real machines are fatter and shallower — data-center fat-trees
//! are three-stage folded-Clos networks built from k-port switches
//! (SNIPPETS.md snippet 1, à la Al-Fares), and Solnushkin's two-layer
//! designs (arXiv:1301.6179) parameterize everything by switch radix.
//!
//! This crate describes such trees abstractly and *embeds* them back into
//! the binary engines:
//!
//! * [`Topology`] — per-level arity plus a per-level [`LevelCaps`]
//!   `{up, down, parallel}` channel table (the shape of SimGrid's
//!   fat-tree descriptions, SNIPPETS.md snippet 3), with constructors for
//!   the paper's binary profiles ([`Topology::binary`] reproduces
//!   [`CapacityProfile`](ft_core::CapacityProfile) exactly), k-ary
//!   pod-based three-stage trees ([`Topology::kary_pods`]) and two-layer
//!   radix-parameterized trees ([`Topology::two_layer`]);
//! * λ lower bounds ([`Topology::lambda_perm_bound`]) and a hardware
//!   cost/volume model ([`CostModel`]): switches, cables, wires,
//!   bisection width, and the §IV packing-law volume proxy;
//! * [`Embedded`] — the binary embedding every engine runs on: each
//!   radix-`a` switch expands into `⌈lg a⌉` binary levels whose
//!   switch-internal channels are sized to aggregate crossbar fan-in
//!   (never binding), real channels keep their real capacities, and
//!   leaves map by mixed-radix digits (the identity when every arity is
//!   a power of two — in particular the binary family runs byte-identical
//!   to today's trees);
//! * [`parse_spec`] — the `--topology` spec-string grammar shared by
//!   every `ftsim` subcommand.

pub mod embed;
pub mod model;
pub mod spec;

pub use embed::{Embedded, MappedStream};
pub use model::{CostModel, Family, LevelCaps, Topology};
pub use spec::{parse_spec, SpecError};
