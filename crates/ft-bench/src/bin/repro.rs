//! Regenerate the experiment tables recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p ft-bench --bin repro -- all      # everything
//! cargo run --release -p ft-bench --bin repro -- e1 e6    # a subset
//! cargo run --release -p ft-bench --bin repro -- --list   # available ids
//! ```

use ft_bench::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--list] [all | e1 e2 … a3]");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for id in ids {
        match run_experiment(id) {
            Some(tables) => {
                for t in tables {
                    println!("{}", t.render_markdown());
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                std::process::exit(2);
            }
        }
    }
}
