//! # ft-telemetry — zero-cost-when-disabled observability for the engines
//!
//! The paper's central quantities — load factor λ(M) (§III), per-channel
//! congestion, delivery-cycle counts, and concentrator matching behaviour
//! (§IV) — are exactly what the flat engines compute fastest and explain
//! worst. This crate is the one mechanism every engine reports through:
//!
//! * [`Recorder`] — the observation trait. Every hook has an empty default
//!   body and the trait carries an associated `const ENABLED: bool`, so an
//!   engine monomorphized over [`NoopRecorder`] (`ENABLED = false`) compiles
//!   the instrumentation *to nothing*: the hot loops dispatch on
//!   `R::ENABLED` exactly the way they previously dispatched on a
//!   `const COUNT: bool` parameter, and the golden byte-identity and
//!   counting-allocator tests pin the disabled path to the untraced one.
//! * [`MetricsRecorder`] — flat per-level counter tables (claimed / blocked
//!   / wasted wire claims), fixed-bucket [`Histogram`]s (channel load vs.
//!   capacity, refinement bucket sizes), per-level λ contributions, per-stage
//!   concentrator matching statistics ([`StageStats`]), and delivered-per-
//!   cycle series. All storage is grow-only and [`MetricsRecorder::reset`]
//!   never frees, so a warmed recorder records steady-state runs with zero
//!   heap allocation (asserted by a counting-allocator test in ft-sched).
//! * [`EventRing`] — structured cycle-level tracing: each event packs into
//!   one u64 (`kind | tag | level | value`) in a reusable overwrite-oldest
//!   ring buffer, exported as JSONL or CSV and re-parsed by
//!   [`parse_jsonl`] (round-trip tested). Tracing is off unless a capacity
//!   is requested via [`MetricsRecorder::with_trace`].
//!
//! The crate is dependency-free (std only) and knows nothing about fat
//! trees: engines pass levels, loads, and capacities as plain integers.

/// Observation hooks called by the engines.
///
/// Implementations accumulate whatever they like; every method has an empty
/// default body. Engines consult [`Recorder::ENABLED`] (a compile-time
/// constant) before doing *any* work on behalf of the recorder — computing a
/// per-level delta, walking a load map — so a [`NoopRecorder`] run is
/// instruction-for-instruction the untraced engine.
pub trait Recorder {
    /// Compile-time switch: `false` only for [`NoopRecorder`]. Engines gate
    /// instrumentation-only work on this constant so the disabled path
    /// optimizes out entirely.
    const ENABLED: bool = true;

    /// A run over a tree of the given height begins (levels are
    /// `1..=height`, root edge first, matching the engines' convention).
    fn run_start(&mut self, height: u32) {
        let _ = height;
    }
    /// A delivery cycle (or baseline step) begins with `live` messages
    /// still undelivered.
    fn cycle_start(&mut self, cycle: u32, live: u32) {
        let _ = (cycle, live);
    }
    /// A delivery cycle ends having delivered `delivered` messages.
    fn cycle_end(&mut self, cycle: u32, delivered: u32) {
        let _ = (cycle, delivered);
    }
    /// The sharded coordinator finished a cycle having spent
    /// `barrier_wait_ns` blocked on shard replies, `merge_ns` merging claim
    /// frames (overlapped with shard compute), and `top_ns` in top-level
    /// arbitration. Only [`run_sharded_with`]-style engines call this.
    fn shard_cycle(&mut self, cycle: u32, barrier_wait_ns: u64, merge_ns: u64, top_ns: u64) {
        let _ = (cycle, barrier_wait_ns, merge_ns, top_ns);
    }
    /// Wire-claim outcome aggregate for one (cycle, level): `claimed` wires
    /// were granted, `blocked` claim attempts were rejected (= resends), and
    /// `wasted` grants were rolled back because the message died higher up.
    fn wire_claims(&mut self, cycle: u32, level: u32, claimed: u64, blocked: u64, wasted: u64) {
        let _ = (cycle, level, claimed, blocked, wasted);
    }
    /// One channel at `level` carried `load` messages against capacity `cap`
    /// during the current cycle.
    fn channel_load(&mut self, level: u32, load: u64, cap: u64) {
        let _ = (level, load, cap);
    }
    /// The Theorem 1 splitter divided a bucket of `size` messages at `level`
    /// into `parts` even parts.
    fn bucket_split(&mut self, level: u32, size: u32, parts: u32) {
        let _ = (level, size, parts);
    }
    /// λ(M) tally site: the channel at `level` carries `load` messages
    /// against capacity `cap` for the whole message set (§III). The maximum
    /// ratio over all sites is the load factor.
    fn lambda_site(&mut self, level: u32, load: u64, cap: u64) {
        let _ = (level, load, cap);
    }
    /// A concentrator matching finished: cascade stage `stage` matched
    /// `matched` of `active` inputs using `rounds` BFS phases and `paths`
    /// augmenting paths (Hopcroft–Karp).
    fn matching_stage(&mut self, stage: u32, active: u32, matched: u32, rounds: u32, paths: u32) {
        let _ = (stage, active, matched, rounds, paths);
    }
    /// An engine ingested a lazily generated message stream of the given
    /// workload family (`"permutation"`, `"bursty"`, `"incast"`, …) holding
    /// `messages` messages. Called once per streamed run, not per cycle.
    fn stream_ingest(&mut self, family: &'static str, messages: u64) {
        let _ = (family, messages);
    }
    /// The serve front-end coalesced `requests` requests (`messages`
    /// messages total) into one shared scheduling pass, and rejected
    /// `rejected` arrivals with `Busy` since the previous batch. Called
    /// once per coalesced batch by `ft-serve`; the admission controller
    /// steers its in-flight limit off the accumulated λ and reject tallies.
    fn serve_batch(&mut self, requests: u32, messages: u64, rejected: u64) {
        let _ = (requests, messages, rejected);
    }
}

/// The do-nothing recorder: `ENABLED = false`, every hook inherits its empty
/// default. Engines monomorphized over this type carry no instrumentation.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;
}

/// A fixed eight-bucket histogram.
///
/// Two recording flavours share the storage: [`Histogram::record_ratio`]
/// buckets a load/capacity fraction into eighths (bucket 7 saturating, so it
/// includes 100 % and overload), and [`Histogram::record_log2`] buckets a
/// size by its binary order of magnitude (bucket `k` holds sizes in
/// `[2^k, 2^(k+1))`, bucket 7 saturating).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Raw bucket counts.
    pub buckets: [u64; 8],
}

impl Histogram {
    /// Record `num/den` as a fraction of capacity. `den = 0` counts as full.
    pub fn record_ratio(&mut self, num: u64, den: u64) {
        let b = if den == 0 || num >= den {
            7
        } else {
            ((num * 8) / den).min(7) as usize
        };
        self.buckets[b] += 1;
    }

    /// Record a size by binary order of magnitude.
    pub fn record_log2(&mut self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            (v.ilog2() as usize).min(7)
        };
        self.buckets[b] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Reset all buckets (no allocation).
    pub fn clear(&mut self) {
        self.buckets = [0; 8];
    }

    /// Render the counts as `a/b/c/d/e/f/g/h`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                s.push('/');
            }
            s.push_str(&b.to_string());
        }
        s
    }
}

/// Number of buckets in a [`LatencyHistogram`]: one per binary order of
/// magnitude of nanoseconds. Bucket 63 is unreachable for real durations
/// (2^63 ns ≈ 292 years) but keeps the index math branch-free.
pub const LATENCY_BUCKETS: usize = 64;

/// Bucket index for a duration: `ilog2(ns)`, with 0 and 1 ns sharing
/// bucket 0. Bucket `k` (k ≥ 1) holds durations in `[2^k, 2^(k+1))`.
#[inline]
pub fn latency_bucket(ns: u64) -> usize {
    if ns < 2 {
        0
    } else {
        ns.ilog2() as usize
    }
}

/// Lower bound (in ns) of a latency bucket — the representative value the
/// percentile extractors report. By construction it is within one binary
/// order of magnitude of every duration the bucket holds.
#[inline]
pub fn latency_bucket_floor(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << b
    }
}

/// A fixed-bucket log2 latency histogram.
///
/// One bucket per binary order of magnitude of nanoseconds, plus exact
/// count / sum / max side-channels. Storage is a fixed array: recording is
/// a shift, a compare, and three adds — no allocation ever, so a warmed
/// serve loop records into it with the same counting-allocator discipline
/// as every arena. Histograms merge by bucket-wise addition
/// ([`LatencyHistogram::merge`]), which is exactly equivalent to having
/// recorded the union of the two observation sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Bucket counts; index = [`latency_bucket`] of the duration.
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Observations recorded.
    pub count: u64,
    /// Exact sum of all recorded durations (ns), saturating.
    pub sum_ns: u64,
    /// Exact maximum recorded duration (ns).
    pub max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration in nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[latency_bucket(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        if ns > self.max_ns {
            self.max_ns = ns;
        }
    }

    /// Fold another histogram in. `a.merge(&b)` leaves `a` equal to a
    /// histogram that recorded every observation of both.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Reset to empty (no allocation).
    pub fn clear(&mut self) {
        *self = LatencyHistogram::default();
    }

    /// Mean duration in ns (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the floor of the bucket holding
    /// the rank-`ceil(q·count)` observation — within one log2 bucket of
    /// the exact order statistic by construction. Returns 0 when empty;
    /// `q >= 1.0` returns the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max_ns;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return latency_bucket_floor(b);
            }
        }
        self.max_ns
    }

    /// Median (see [`LatencyHistogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (see [`LatencyHistogram::quantile`]).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (see [`LatencyHistogram::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as a compact JSON array of `[index, count]` pairs
    /// (dense 64-wide arrays would bloat every scrape).
    pub fn to_json_buckets(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("[{b},{c}]"));
        }
        out.push(']');
        out
    }
}

/// Wait-free shared twin of [`LatencyHistogram`]: every cell is a relaxed
/// `AtomicU64`, so the serve pipeline's reader / batcher / compute threads
/// record concurrently without locks and a metrics scrape snapshots the
/// whole thing without ever blocking the hot path.
///
/// `max_ns` uses `fetch_max`; everything else is `fetch_add`. A snapshot
/// taken mid-record can be off by the in-flight observation — fine for
/// monitoring, and the counters are monotone so scrapes never go backward.
#[derive(Debug)]
pub struct AtomicLatencyHistogram {
    buckets: [core::sync::atomic::AtomicU64; LATENCY_BUCKETS],
    count: core::sync::atomic::AtomicU64,
    sum_ns: core::sync::atomic::AtomicU64,
    max_ns: core::sync::atomic::AtomicU64,
}

impl Default for AtomicLatencyHistogram {
    fn default() -> Self {
        use core::sync::atomic::AtomicU64;
        AtomicLatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl AtomicLatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration in nanoseconds (wait-free, relaxed ordering).
    #[inline]
    pub fn record(&self, ns: u64) {
        use core::sync::atomic::Ordering::Relaxed;
        self.buckets[latency_bucket(ns)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_ns.fetch_add(ns, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
    }

    /// Copy the current contents into a plain [`LatencyHistogram`].
    pub fn snapshot(&self) -> LatencyHistogram {
        use core::sync::atomic::Ordering::Relaxed;
        let mut h = LatencyHistogram::default();
        for (dst, src) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Relaxed);
        }
        h.count = self.count.load(Relaxed);
        h.sum_ns = self.sum_ns.load(Relaxed);
        h.max_ns = self.max_ns.load(Relaxed);
        h
    }
}

/// Per-cascade-stage matching statistics (ROADMAP: matching-size and
/// augmenting-path counters for `MatchingArena` and the cascade stack).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Number of matchings run at this stage.
    pub runs: u64,
    /// Total BFS phases (Hopcroft–Karp rounds) across runs.
    pub rounds: u64,
    /// Total successful augmenting paths across runs.
    pub paths: u64,
    /// Total inputs offered across runs.
    pub active: u64,
    /// Total inputs matched across runs.
    pub matched: u64,
    /// Histogram of matching sizes (binary orders of magnitude).
    pub sizes: Histogram,
}

/// The metrics registry: flat per-level counter tables, fixed-bucket
/// histograms, λ contributions, per-stage matching statistics, and an
/// optional [`EventRing`] trace.
///
/// Storage is grow-only: per-level tables expand on first contact with a
/// level and [`MetricsRecorder::reset`] zeroes without freeing, so a warmed
/// recorder is allocation-free in steady state.
#[derive(Clone, Debug, Default)]
pub struct MetricsRecorder {
    /// Tree height of the current run (levels are `1..=height`).
    pub height: u32,
    /// Delivery cycles completed (count of [`Recorder::cycle_end`] calls).
    pub cycles: u32,
    /// Messages delivered per cycle, in cycle order.
    pub delivered_per_cycle: Vec<u64>,
    /// Granted wire claims per level (index 0 unused).
    pub claimed: Vec<u64>,
    /// Rejected wire-claim attempts (= resends) per level (index 0 unused).
    pub blocked: Vec<u64>,
    /// Rolled-back grants per level (index 0 unused).
    pub wasted: Vec<u64>,
    /// Channel load vs. capacity histogram per level (index 0 unused).
    pub load_hist: Vec<Histogram>,
    /// Maximum λ contribution (load/cap) seen per level (index 0 unused).
    pub lambda: Vec<f64>,
    /// Splitter buckets processed per level (index 0 unused).
    pub splits: Vec<u64>,
    /// Histogram of splitter bucket sizes (binary orders of magnitude).
    pub split_sizes: Histogram,
    /// Per-cascade-stage matching statistics.
    pub stages: Vec<StageStats>,
    /// Coordinator barrier wait per cycle (ns); empty for unsharded runs.
    pub barrier_wait_ns_per_cycle: Vec<u64>,
    /// Coordinator claim-merge time per cycle (ns); empty for unsharded runs.
    pub merge_ns_per_cycle: Vec<u64>,
    /// Coordinator top-arbitration time per cycle (ns); empty for unsharded
    /// runs.
    pub top_ns_per_cycle: Vec<u64>,
    /// Streamed-ingest tally per workload family: `(family, runs, messages)`.
    /// Empty unless an engine ingested a lazy [`stream_ingest`] workload.
    ///
    /// [`stream_ingest`]: Recorder::stream_ingest
    pub stream_families: Vec<(&'static str, u64, u64)>,
    /// Coalesced serve batches observed ([`Recorder::serve_batch`] calls).
    pub serve_batches: u64,
    /// Requests coalesced across all serve batches.
    pub serve_requests: u64,
    /// Messages scheduled across all serve batches.
    pub serve_messages: u64,
    /// `Busy` rejects tallied across all serve batches.
    pub serve_rejected: u64,
    /// Histogram of coalesced batch sizes (requests per batch, binary
    /// orders of magnitude).
    pub serve_batch_sizes: Histogram,
    /// Optional event trace; capacity 0 = tracing off.
    pub ring: EventRing,
    cur_cycle: u32,
}

impl MetricsRecorder {
    /// A metrics-only recorder (no event trace).
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder that additionally traces up to `capacity` packed events in
    /// an overwrite-oldest ring.
    pub fn with_trace(capacity: usize) -> Self {
        Self {
            ring: EventRing::new(capacity),
            ..Self::default()
        }
    }

    /// Clear every table and the trace without freeing any storage.
    pub fn reset(&mut self) {
        self.height = 0;
        self.cycles = 0;
        self.cur_cycle = 0;
        self.delivered_per_cycle.clear();
        for v in [&mut self.claimed, &mut self.blocked, &mut self.wasted] {
            v.iter_mut().for_each(|c| *c = 0);
        }
        self.load_hist.iter_mut().for_each(Histogram::clear);
        self.lambda.iter_mut().for_each(|l| *l = 0.0);
        self.splits.iter_mut().for_each(|c| *c = 0);
        self.split_sizes.clear();
        for s in &mut self.stages {
            *s = StageStats::default();
        }
        self.barrier_wait_ns_per_cycle.clear();
        self.merge_ns_per_cycle.clear();
        self.top_ns_per_cycle.clear();
        self.stream_families.clear();
        self.serve_batches = 0;
        self.serve_requests = 0;
        self.serve_messages = 0;
        self.serve_rejected = 0;
        self.serve_batch_sizes.clear();
        self.ring.clear();
    }

    fn grow_levels(&mut self, levels: usize) {
        if self.claimed.len() < levels {
            self.claimed.resize(levels, 0);
            self.blocked.resize(levels, 0);
            self.wasted.resize(levels, 0);
            self.load_hist.resize(levels, Histogram::default());
            self.lambda.resize(levels, 0.0);
            self.splits.resize(levels, 0);
        }
    }

    fn level_capacity(&mut self, level: u32) {
        if (level as usize) >= self.claimed.len() {
            self.grow_levels(level as usize + 1);
        }
    }

    /// Total rejected wire-claim attempts across all levels (resends).
    pub fn total_blocked(&self) -> u64 {
        self.blocked.iter().sum()
    }

    /// Total granted wire claims across all levels.
    pub fn total_claimed(&self) -> u64 {
        self.claimed.iter().sum()
    }

    /// Total rolled-back grants across all levels.
    pub fn total_wasted(&self) -> u64 {
        self.wasted.iter().sum()
    }

    /// Total messages delivered across all cycles.
    pub fn total_delivered(&self) -> u64 {
        self.delivered_per_cycle.iter().sum()
    }

    /// The level with the most blocked claims, if any claim was blocked.
    pub fn hottest_level(&self) -> Option<u32> {
        let (mut best, mut at) = (0u64, None);
        for (lvl, &b) in self.blocked.iter().enumerate() {
            if b > best {
                best = b;
                at = Some(lvl as u32);
            }
        }
        at
    }

    /// The maximum λ contribution over all levels (the load factor, when the
    /// scheduler fed every tally site through [`Recorder::lambda_site`]).
    pub fn lambda_max(&self) -> f64 {
        self.lambda.iter().cloned().fold(0.0, f64::max)
    }

    /// Per-level contention table: `level k: claimed/blocked/wasted`.
    pub fn render_contention(&self) -> String {
        let mut out = String::new();
        for lvl in 1..self.claimed.len() {
            out.push_str(&format!(
                "  level {lvl:>2}: claimed {:>8}  blocked {:>8}  wasted {:>8}\n",
                self.claimed[lvl], self.blocked[lvl], self.wasted[lvl]
            ));
        }
        out
    }

    /// Per-level λ contribution table.
    pub fn render_lambda(&self) -> String {
        let mut out = String::new();
        for lvl in 1..self.lambda.len() {
            out.push_str(&format!(
                "  level {lvl:>2}: λ contribution {:>8.3}\n",
                self.lambda[lvl]
            ));
        }
        out
    }

    /// Per-level channel load-vs-capacity histograms (eighths of capacity,
    /// last bucket = full or overloaded).
    pub fn render_load(&self) -> String {
        let mut out = String::new();
        for (lvl, h) in self.load_hist.iter().enumerate().skip(1) {
            if h.total() == 0 {
                continue;
            }
            out.push_str(&format!(
                "  level {lvl:>2}: load/cap eighths {}\n",
                h.render()
            ));
        }
        out
    }

    /// Per-stage matching statistics table.
    pub fn render_stages(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.stages.iter().enumerate() {
            if s.runs == 0 {
                continue;
            }
            out.push_str(&format!(
                "  stage {i}: runs {:>4}  matched {:>7}/{:<7}  rounds {:>5}  aug-paths {:>7}  sizes(log2) {}\n",
                s.runs, s.matched, s.active, s.rounds, s.paths, s.sizes.render()
            ));
        }
        out
    }

    /// Hand-rolled JSON object with every table (no trailing newline). This
    /// is the `telemetry` payload ft-perf attaches to `BENCH_engine.json`
    /// and `ftsim report --json` prints.
    pub fn to_json(&self) -> String {
        fn nums<T: ToString>(v: impl IntoIterator<Item = T>) -> String {
            let items: Vec<String> = v.into_iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(","))
        }
        let lambda: Vec<String> = self.lambda.iter().map(|l| format!("{l:.6}")).collect();
        let hists: Vec<String> = self
            .load_hist
            .iter()
            .map(|h| nums(h.buckets.iter().copied()))
            .collect();
        let stages: Vec<String> = self
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                format!(
                    "{{\"stage\":{i},\"runs\":{},\"rounds\":{},\"paths\":{},\"active\":{},\"matched\":{},\"sizes\":{}}}",
                    s.runs, s.rounds, s.paths, s.active, s.matched,
                    nums(s.sizes.buckets.iter().copied())
                )
            })
            .collect();
        let streams: Vec<String> = self
            .stream_families
            .iter()
            .map(|&(f, runs, messages)| {
                format!("{{\"family\":\"{f}\",\"runs\":{runs},\"messages\":{messages}}}")
            })
            .collect();
        let serve = format!(
            "{{\"batches\":{},\"requests\":{},\"messages\":{},\"rejected\":{},\"batch_sizes\":{}}}",
            self.serve_batches,
            self.serve_requests,
            self.serve_messages,
            self.serve_rejected,
            nums(self.serve_batch_sizes.buckets.iter().copied())
        );
        format!(
            "{{\"height\":{},\"cycles\":{},\"delivered_per_cycle\":{},\"claimed\":{},\"blocked\":{},\"wasted\":{},\"lambda\":[{}],\"load_hist\":[{}],\"splits\":{},\"split_sizes\":{},\"stages\":[{}],\"stream_ingest\":[{}],\"serve\":{serve},\"barrier_wait_ns\":{},\"merge_ns\":{},\"top_arb_ns\":{},\"events_dropped\":{}}}",
            self.height,
            self.cycles,
            nums(self.delivered_per_cycle.iter().copied()),
            nums(self.claimed.iter().copied()),
            nums(self.blocked.iter().copied()),
            nums(self.wasted.iter().copied()),
            lambda.join(","),
            hists.join(","),
            nums(self.splits.iter().copied()),
            nums(self.split_sizes.buckets.iter().copied()),
            stages.join(","),
            streams.join(","),
            nums(self.barrier_wait_ns_per_cycle.iter().copied()),
            nums(self.merge_ns_per_cycle.iter().copied()),
            nums(self.top_ns_per_cycle.iter().copied()),
            self.ring.dropped()
        )
    }

    /// Streamed-workload ingest table: `family: runs, messages`. Empty
    /// string when nothing was streamed.
    pub fn render_streams(&self) -> String {
        let mut out = String::new();
        for &(family, runs, messages) in &self.stream_families {
            out.push_str(&format!(
                "  {family:<12}: runs {runs:>4}  messages {messages:>12}\n"
            ));
        }
        out
    }

    /// Coordinator overlap table: per-cycle barrier wait vs. merge vs. top
    /// arbitration time, with totals. Empty string for unsharded runs.
    pub fn render_shard_cycles(&self) -> String {
        if self.barrier_wait_ns_per_cycle.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let (mut bw, mut mg, mut tp) = (0u64, 0u64, 0u64);
        for c in 0..self.barrier_wait_ns_per_cycle.len() {
            let (b, m, t) = (
                self.barrier_wait_ns_per_cycle[c],
                self.merge_ns_per_cycle[c],
                self.top_ns_per_cycle[c],
            );
            bw += b;
            mg += m;
            tp += t;
            out.push_str(&format!(
                "  cycle {c:>3}: barrier-wait {:>9}ns  merge {:>8}ns  top-arb {:>8}ns\n",
                b, m, t
            ));
        }
        out.push_str(&format!(
            "  total    : barrier-wait {bw:>9}ns  merge {mg:>8}ns  top-arb {tp:>8}ns\n"
        ));
        out
    }
}

impl Recorder for MetricsRecorder {
    fn run_start(&mut self, height: u32) {
        self.height = self.height.max(height);
        self.grow_levels(height as usize + 1);
    }

    fn cycle_start(&mut self, cycle: u32, live: u32) {
        self.cur_cycle = cycle;
        self.ring
            .push(Event::new(EventKind::CycleStart, cycle, 0, live));
    }

    fn cycle_end(&mut self, cycle: u32, delivered: u32) {
        self.cycles += 1;
        self.delivered_per_cycle.push(delivered as u64);
        self.ring
            .push(Event::new(EventKind::CycleEnd, cycle, 0, delivered));
    }

    fn shard_cycle(&mut self, _cycle: u32, barrier_wait_ns: u64, merge_ns: u64, top_ns: u64) {
        self.barrier_wait_ns_per_cycle.push(barrier_wait_ns);
        self.merge_ns_per_cycle.push(merge_ns);
        self.top_ns_per_cycle.push(top_ns);
    }

    fn wire_claims(&mut self, cycle: u32, level: u32, claimed: u64, blocked: u64, wasted: u64) {
        self.level_capacity(level);
        let l = level as usize;
        self.claimed[l] += claimed;
        self.blocked[l] += blocked;
        self.wasted[l] += wasted;
        if self.ring.capacity() > 0 {
            if claimed > 0 {
                self.ring.push(Event::new(
                    EventKind::WireClaim,
                    cycle,
                    level,
                    claimed as u32,
                ));
            }
            if blocked > 0 {
                self.ring.push(Event::new(
                    EventKind::WireReject,
                    cycle,
                    level,
                    blocked as u32,
                ));
            }
        }
    }

    fn channel_load(&mut self, level: u32, load: u64, cap: u64) {
        self.level_capacity(level);
        self.load_hist[level as usize].record_ratio(load, cap);
        self.ring.push(Event::new(
            EventKind::ChannelLoad,
            self.cur_cycle,
            level,
            load as u32,
        ));
    }

    fn bucket_split(&mut self, level: u32, size: u32, parts: u32) {
        self.level_capacity(level);
        self.splits[level as usize] += 1;
        self.split_sizes.record_log2(size as u64);
        self.ring
            .push(Event::new(EventKind::BucketSplit, parts, level, size));
    }

    fn lambda_site(&mut self, level: u32, load: u64, cap: u64) {
        self.level_capacity(level);
        let ratio = load as f64 / cap.max(1) as f64;
        let l = level as usize;
        if ratio > self.lambda[l] {
            self.lambda[l] = ratio;
        }
        self.ring
            .push(Event::new(EventKind::LambdaSite, 0, level, load as u32));
    }

    fn matching_stage(&mut self, stage: u32, active: u32, matched: u32, rounds: u32, paths: u32) {
        if (stage as usize) >= self.stages.len() {
            self.stages
                .resize(stage as usize + 1, StageStats::default());
        }
        let s = &mut self.stages[stage as usize];
        s.runs += 1;
        s.rounds += rounds as u64;
        s.paths += paths as u64;
        s.active += active as u64;
        s.matched += matched as u64;
        s.sizes.record_log2(matched as u64);
        self.ring
            .push(Event::new(EventKind::MatchingRound, stage, 0, matched));
    }

    fn stream_ingest(&mut self, family: &'static str, messages: u64) {
        for entry in &mut self.stream_families {
            if entry.0 == family {
                entry.1 += 1;
                entry.2 += messages;
                return;
            }
        }
        self.stream_families.push((family, 1, messages));
    }

    fn serve_batch(&mut self, requests: u32, messages: u64, rejected: u64) {
        self.serve_batches += 1;
        self.serve_requests += requests as u64;
        self.serve_messages += messages;
        self.serve_rejected += rejected;
        self.serve_batch_sizes.record_log2(requests as u64);
    }
}

/// Event kinds, 4 bits in the packed word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A delivery cycle began; `value` = live messages.
    CycleStart = 0,
    /// A delivery cycle ended; `value` = messages delivered.
    CycleEnd = 1,
    /// Granted wire claims at (`tag` = cycle, `level`); `value` = count.
    WireClaim = 2,
    /// Rejected wire claims at (`tag` = cycle, `level`); `value` = count.
    WireReject = 3,
    /// Splitter bucket divided; `tag` = parts, `value` = bucket size.
    BucketSplit = 4,
    /// Matching finished at cascade stage `tag`; `value` = matched inputs.
    MatchingRound = 5,
    /// Channel load observed; `tag` = cycle, `value` = load.
    ChannelLoad = 6,
    /// λ tally site observed; `value` = subtree load.
    LambdaSite = 7,
    /// Serve span: request `tag` admitted; `level` = engine (0 = schedule,
    /// 1 = online), `value` = message count.
    ReqAdmit = 8,
    /// Serve span: request `tag` coalesced into a batch; `level` = batch
    /// width (requests sharing the pass), `value` = batch sequence number.
    ReqBatch = 9,
    /// Serve span: request `tag` rejected with `Busy`; `value` = in-flight
    /// count at the rejection.
    ReqBusy = 10,
    /// Serve span: request `tag` responded; `level` = engine, `value` =
    /// wall time in microseconds (saturating).
    ReqDone = 11,
    /// Serve span: idle connection `tag` reaped by the dead-client timer
    /// (`value` unused, 0).
    ConnReap = 12,
}

impl EventKind {
    fn from_bits(b: u64) -> Option<EventKind> {
        Some(match b {
            0 => EventKind::CycleStart,
            1 => EventKind::CycleEnd,
            2 => EventKind::WireClaim,
            3 => EventKind::WireReject,
            4 => EventKind::BucketSplit,
            5 => EventKind::MatchingRound,
            6 => EventKind::ChannelLoad,
            7 => EventKind::LambdaSite,
            8 => EventKind::ReqAdmit,
            9 => EventKind::ReqBatch,
            10 => EventKind::ReqBusy,
            11 => EventKind::ReqDone,
            12 => EventKind::ConnReap,
            _ => return None,
        })
    }

    /// Stable lowercase name used by the JSONL/CSV exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::CycleStart => "cycle_start",
            EventKind::CycleEnd => "cycle_end",
            EventKind::WireClaim => "wire_claim",
            EventKind::WireReject => "wire_reject",
            EventKind::BucketSplit => "bucket_split",
            EventKind::MatchingRound => "matching_round",
            EventKind::ChannelLoad => "channel_load",
            EventKind::LambdaSite => "lambda_site",
            EventKind::ReqAdmit => "req_admit",
            EventKind::ReqBatch => "req_batch",
            EventKind::ReqBusy => "req_busy",
            EventKind::ReqDone => "req_done",
            EventKind::ConnReap => "conn_reap",
        }
    }

    fn from_name(s: &str) -> Option<EventKind> {
        Some(match s {
            "cycle_start" => EventKind::CycleStart,
            "cycle_end" => EventKind::CycleEnd,
            "wire_claim" => EventKind::WireClaim,
            "wire_reject" => EventKind::WireReject,
            "bucket_split" => EventKind::BucketSplit,
            "matching_round" => EventKind::MatchingRound,
            "channel_load" => EventKind::ChannelLoad,
            "lambda_site" => EventKind::LambdaSite,
            "req_admit" => EventKind::ReqAdmit,
            "req_batch" => EventKind::ReqBatch,
            "req_busy" => EventKind::ReqBusy,
            "req_done" => EventKind::ReqDone,
            "conn_reap" => EventKind::ConnReap,
            _ => return None,
        })
    }
}

/// One unpacked trace event. Packs into a single u64:
/// `kind` (bits 60..64) | `tag` (bits 36..60, cycle or stage) |
/// `level` (bits 28..36) | `value` (bits 0..28). Fields saturate at their
/// bit widths when packed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Cycle, stage, or parts count — see the kind's documentation.
    pub tag: u32,
    /// Channel level (0 when not applicable).
    pub level: u32,
    /// The kind-specific measurement.
    pub value: u32,
}

const TAG_MAX: u32 = (1 << 24) - 1;
const LEVEL_MAX: u32 = (1 << 8) - 1;
const VALUE_MAX: u32 = (1 << 28) - 1;

impl Event {
    /// Build an event, saturating each field at its packed width.
    pub fn new(kind: EventKind, tag: u32, level: u32, value: u32) -> Event {
        Event {
            kind,
            tag: tag.min(TAG_MAX),
            level: level.min(LEVEL_MAX),
            value: value.min(VALUE_MAX),
        }
    }

    /// Pack into the on-ring u64 representation.
    pub fn pack(self) -> u64 {
        ((self.kind as u64) << 60)
            | ((self.tag as u64) << 36)
            | ((self.level as u64) << 28)
            | self.value as u64
    }

    /// Unpack from the on-ring u64 representation.
    pub fn unpack(w: u64) -> Event {
        Event {
            kind: EventKind::from_bits(w >> 60).expect("4-bit kind in range"),
            tag: ((w >> 36) & TAG_MAX as u64) as u32,
            level: ((w >> 28) & LEVEL_MAX as u64) as u32,
            value: (w & VALUE_MAX as u64) as u32,
        }
    }

    /// One JSONL line (no trailing newline).
    pub fn to_jsonl(self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"tag\":{},\"level\":{},\"value\":{}}}",
            self.kind.name(),
            self.tag,
            self.level,
            self.value
        )
    }

    /// One CSV line (no trailing newline); header is [`CSV_HEADER`].
    pub fn to_csv(self) -> String {
        format!(
            "{},{},{},{}",
            self.kind.name(),
            self.tag,
            self.level,
            self.value
        )
    }
}

/// Column header matching [`Event::to_csv`].
pub const CSV_HEADER: &str = "kind,tag,level,value";

/// Reusable overwrite-oldest ring of packed events.
///
/// Capacity 0 (the default) disables tracing: every push is a cheap
/// early-return. The buffer is allocated once at construction and reused
/// across runs; when full, the oldest event is overwritten and counted in
/// [`EventRing::dropped`].
#[derive(Clone, Debug, Default)]
pub struct EventRing {
    buf: Vec<u64>,
    head: usize,
    len: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding up to `capacity` packed events (0 = tracing off).
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            buf: vec![0; capacity],
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Maximum events held.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Oldest events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Append an event, overwriting the oldest if full. No-op when tracing
    /// is off (capacity 0).
    pub fn push(&mut self, e: Event) {
        let cap = self.buf.len();
        if cap == 0 {
            return;
        }
        let at = (self.head + self.len) % cap;
        self.buf[at] = e.pack();
        if self.len == cap {
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        } else {
            self.len += 1;
        }
    }

    /// Drop all events (keeps the buffer).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
    }

    /// Events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        let cap = self.buf.len().max(1);
        (0..self.len).map(move |i| Event::unpack(self.buf[(self.head + i) % cap]))
    }

    /// Export every event as JSON Lines (one object per line).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.iter() {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Export every event as CSV with a header row.
    pub fn export_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for e in self.iter() {
            out.push_str(&e.to_csv());
            out.push('\n');
        }
        out
    }
}

/// Parse the output of [`EventRing::export_jsonl`] back into events.
///
/// Strict by design: every non-empty line must be exactly one event object
/// with exactly the four known fields, each appearing once — duplicate
/// keys, unknown keys, and trailing garbage after the closing brace (e.g.
/// two concatenated objects on one line) are all rejected. Returns the
/// 1-based offending line in the error. This is the round-trip half used
/// by `ftsim trace --verify` and the exporter tests — hand-rolled, like
/// every JSON in this workspace.
pub fn parse_jsonl(src: &str) -> Result<Vec<Event>, String> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_event_line(line, lineno)?);
    }
    Ok(out)
}

/// One strict event object. Field values never contain braces or commas,
/// so splitting on them is exact, not approximate.
fn parse_event_line(line: &str, lineno: usize) -> Result<Event, String> {
    let inner = line
        .strip_prefix('{')
        .ok_or_else(|| format!("line {lineno}: not a JSON object: {line:?}"))?;
    let (inner, rest) = inner
        .split_once('}')
        .ok_or_else(|| format!("line {lineno}: unterminated object: {line:?}"))?;
    if !rest.trim().is_empty() {
        return Err(format!(
            "line {lineno}: trailing garbage after object: {rest:?}"
        ));
    }
    let mut kind: Option<EventKind> = None;
    let mut tag: Option<u32> = None;
    let mut level: Option<u32> = None;
    let mut value: Option<u32> = None;
    for part in inner.split(',') {
        let part = part.trim();
        let (k, v) = part
            .split_once(':')
            .ok_or_else(|| format!("line {lineno}: not a \"key\":value pair: {part:?}"))?;
        let key = k
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("line {lineno}: key is not a string: {:?}", k.trim()))?;
        let v = v.trim();
        match key {
            "kind" => {
                if kind.is_some() {
                    return Err(format!("line {lineno}: duplicate field \"kind\""));
                }
                let name = v
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: kind is not a string: {v:?}"))?;
                kind = Some(
                    EventKind::from_name(name)
                        .ok_or_else(|| format!("line {lineno}: unknown event kind {name:?}"))?,
                );
            }
            "tag" | "level" | "value" => {
                let slot = match key {
                    "tag" => &mut tag,
                    "level" => &mut level,
                    _ => &mut value,
                };
                if slot.is_some() {
                    return Err(format!("line {lineno}: duplicate field {key:?}"));
                }
                *slot = Some(v.parse::<u32>().map_err(|_| {
                    format!("line {lineno}: field {key:?} is not an integer: {v:?}")
                })?);
            }
            other => {
                return Err(format!("line {lineno}: unknown field {other:?}"));
            }
        }
    }
    let missing = |key: &str| format!("line {lineno}: missing field {key:?}");
    Ok(Event::new(
        kind.ok_or_else(|| missing("kind"))?,
        tag.ok_or_else(|| missing("tag"))?,
        level.ok_or_else(|| missing("level"))?,
        value.ok_or_else(|| missing("value"))?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_pack_roundtrip_all_kinds_and_extremes() {
        for kind in [
            EventKind::CycleStart,
            EventKind::CycleEnd,
            EventKind::WireClaim,
            EventKind::WireReject,
            EventKind::BucketSplit,
            EventKind::MatchingRound,
            EventKind::ChannelLoad,
            EventKind::LambdaSite,
            EventKind::ReqAdmit,
            EventKind::ReqBatch,
            EventKind::ReqBusy,
            EventKind::ReqDone,
            EventKind::ConnReap,
        ] {
            for (tag, level, value) in [
                (0, 0, 0),
                (1, 2, 3),
                (TAG_MAX, LEVEL_MAX, VALUE_MAX),
                (12345, 17, 9_999_999),
            ] {
                let e = Event::new(kind, tag, level, value);
                assert_eq!(Event::unpack(e.pack()), e);
            }
        }
    }

    #[test]
    fn event_fields_saturate_at_packed_width() {
        let e = Event::new(EventKind::WireClaim, u32::MAX, u32::MAX, u32::MAX);
        assert_eq!((e.tag, e.level, e.value), (TAG_MAX, LEVEL_MAX, VALUE_MAX));
        assert_eq!(Event::unpack(e.pack()), e);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = EventRing::new(3);
        for i in 0..5u32 {
            r.push(Event::new(EventKind::CycleEnd, i, 0, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let tags: Vec<u32> = r.iter().map(|e| e.tag).collect();
        assert_eq!(tags, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_ring_ignores_pushes() {
        let mut r = EventRing::new(0);
        r.push(Event::new(EventKind::CycleStart, 1, 0, 1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.export_jsonl(), "");
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut r = EventRing::new(16);
        r.push(Event::new(EventKind::CycleStart, 0, 0, 42));
        r.push(Event::new(EventKind::WireClaim, 0, 3, 17));
        r.push(Event::new(EventKind::WireReject, 0, 3, 5));
        r.push(Event::new(EventKind::BucketSplit, 2, 4, 1024));
        r.push(Event::new(EventKind::MatchingRound, 1, 0, 20));
        r.push(Event::new(EventKind::ChannelLoad, 0, 2, 64));
        r.push(Event::new(EventKind::LambdaSite, 0, 1, 999));
        r.push(Event::new(EventKind::ReqAdmit, 7, 0, 64));
        r.push(Event::new(EventKind::ReqBatch, 7, 4, 2));
        r.push(Event::new(EventKind::ReqBusy, 8, 0, 65));
        r.push(Event::new(EventKind::ReqDone, 7, 0, 1200));
        r.push(Event::new(EventKind::ConnReap, 3, 0, 1));
        r.push(Event::new(EventKind::CycleEnd, 0, 0, 42));
        let text = r.export_jsonl();
        let parsed = parse_jsonl(&text).expect("round-trip parse");
        let original: Vec<Event> = r.iter().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn jsonl_parser_rejects_malformed_lines() {
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"kind\":\"nope\",\"tag\":0,\"level\":0,\"value\":0}").is_err());
        assert!(
            parse_jsonl("{\"kind\":\"cycle_end\",\"tag\":-1,\"level\":0,\"value\":0}").is_err()
        );
        assert!(parse_jsonl("{\"kind\":\"cycle_end\",\"tag\":0,\"level\":0}").is_err());
        // Empty lines are fine.
        assert_eq!(parse_jsonl("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn jsonl_parser_rejects_duplicate_keys() {
        // A duplicate key must not be resolved by find-first or last-wins.
        let dup_int = "{\"kind\":\"cycle_end\",\"tag\":1,\"tag\":2,\"level\":0,\"value\":0}";
        let err = parse_jsonl(dup_int).unwrap_err();
        assert!(err.contains("duplicate field \"tag\""), "got: {err}");
        let dup_kind =
            "{\"kind\":\"cycle_end\",\"kind\":\"cycle_start\",\"tag\":0,\"level\":0,\"value\":0}";
        let err = parse_jsonl(dup_kind).unwrap_err();
        assert!(err.contains("duplicate field \"kind\""), "got: {err}");
    }

    #[test]
    fn jsonl_parser_rejects_trailing_garbage() {
        let ok = "{\"kind\":\"cycle_end\",\"tag\":0,\"level\":0,\"value\":7}";
        assert_eq!(parse_jsonl(ok).unwrap().len(), 1);
        // Two concatenated objects start with '{' and end with '}' — they
        // must still be rejected, not parsed as the first object.
        let glued = format!("{ok}{ok}");
        let err = parse_jsonl(&glued).unwrap_err();
        assert!(err.contains("trailing garbage"), "got: {err}");
        let trailing = format!("{ok} x");
        assert!(parse_jsonl(&trailing).is_err());
        // Unknown fields and non-string keys are rejected too.
        let unknown = "{\"kind\":\"cycle_end\",\"tag\":0,\"level\":0,\"value\":0,\"extra\":1}";
        assert!(parse_jsonl(unknown).unwrap_err().contains("unknown field"));
        let bare_key = "{kind:\"cycle_end\",\"tag\":0,\"level\":0,\"value\":0}";
        assert!(parse_jsonl(bare_key).is_err());
    }

    #[test]
    fn csv_export_shape() {
        let mut r = EventRing::new(4);
        r.push(Event::new(EventKind::CycleEnd, 7, 0, 3));
        let csv = r.export_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        assert_eq!(lines.next(), Some("cycle_end,7,0,3"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn metrics_recorder_accumulates_and_resets_without_freeing() {
        let mut m = MetricsRecorder::with_trace(8);
        m.run_start(3);
        m.cycle_start(0, 10);
        m.wire_claims(0, 1, 5, 2, 1);
        m.wire_claims(0, 2, 7, 0, 0);
        m.channel_load(1, 3, 4);
        m.lambda_site(1, 9, 4);
        m.lambda_site(2, 1, 4);
        m.bucket_split(2, 100, 2);
        m.matching_stage(0, 32, 30, 3, 30);
        m.cycle_end(0, 10);

        assert_eq!(m.cycles, 1);
        assert_eq!(m.total_claimed(), 12);
        assert_eq!(m.total_blocked(), 2);
        assert_eq!(m.total_wasted(), 1);
        assert_eq!(m.hottest_level(), Some(1));
        assert!((m.lambda_max() - 2.25).abs() < 1e-12);
        assert_eq!(m.splits[2], 1);
        assert_eq!(m.stages[0].runs, 1);
        assert_eq!(m.stages[0].matched, 30);
        assert!(!m.ring.is_empty());
        let json = m.to_json();
        assert!(json.contains("\"cycles\":1"));
        assert!(json.contains("\"blocked\":[0,2,0,0]"));

        let levels = m.claimed.len();
        let cap = m.claimed.capacity();
        m.reset();
        assert_eq!(m.cycles, 0);
        assert_eq!(m.total_claimed(), 0);
        assert_eq!(m.claimed.len(), levels, "reset must keep level tables");
        assert_eq!(m.claimed.capacity(), cap, "reset must not free");
        assert!(m.ring.is_empty());
    }

    #[test]
    fn stream_ingest_accumulates_per_family() {
        let mut m = MetricsRecorder::new();
        m.stream_ingest("permutation", 1024);
        m.stream_ingest("bursty", 4096);
        m.stream_ingest("permutation", 512);
        assert_eq!(
            m.stream_families,
            vec![("permutation", 2, 1536), ("bursty", 1, 4096)]
        );
        assert!(m.render_streams().contains("permutation"));
        let json = m.to_json();
        assert!(json.contains("\"stream_ingest\":[{\"family\":\"permutation\",\"runs\":2,\"messages\":1536},{\"family\":\"bursty\",\"runs\":1,\"messages\":4096}]"), "got: {json}");
        m.reset();
        assert!(m.stream_families.is_empty());
        assert!(m.to_json().contains("\"stream_ingest\":[]"));
    }

    #[test]
    fn serve_batch_accumulates_and_resets() {
        let mut m = MetricsRecorder::new();
        m.serve_batch(4, 256, 1);
        m.serve_batch(8, 512, 0);
        assert_eq!(m.serve_batches, 2);
        assert_eq!(m.serve_requests, 12);
        assert_eq!(m.serve_messages, 768);
        assert_eq!(m.serve_rejected, 1);
        assert_eq!(m.serve_batch_sizes.buckets[2], 1); // 4 requests
        assert_eq!(m.serve_batch_sizes.buckets[3], 1); // 8 requests
        let json = m.to_json();
        assert!(
            json.contains(
                "\"serve\":{\"batches\":2,\"requests\":12,\"messages\":768,\"rejected\":1"
            ),
            "got: {json}"
        );
        m.reset();
        assert_eq!(m.serve_batches, 0);
        assert_eq!(m.serve_batch_sizes.total(), 0);
        assert!(m.to_json().contains("\"serve\":{\"batches\":0"));
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::default();
        h.record_ratio(0, 8); // bucket 0
        h.record_ratio(7, 8); // bucket 7
        h.record_ratio(8, 8); // full -> bucket 7
        h.record_ratio(12, 8); // overloaded -> bucket 7
        h.record_ratio(1, 0); // cap 0 counts as full
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[7], 4);
        assert_eq!(h.total(), 5);

        let mut s = Histogram::default();
        s.record_log2(0); // bucket 0
        s.record_log2(1); // bucket 0
        s.record_log2(2); // bucket 1
        s.record_log2(255); // bucket 7
        s.record_log2(1 << 20); // saturates to bucket 7
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[7], 2);
        assert_eq!(s.render(), "2/1/0/0/0/0/0/2");
    }

    #[test]
    fn latency_histogram_records_and_extracts() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        for ns in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.max_ns, 1_000_000);
        assert_eq!(h.sum_ns, 1_001_106);
        assert_eq!(h.buckets[0], 2); // 0 and 1
        assert_eq!(h.buckets[1], 2); // 2 and 3
        assert_eq!(h.buckets[6], 1); // 100
        assert_eq!(h.buckets[9], 1); // 1000
        assert_eq!(h.buckets[19], 1); // 1_000_000
                                      // Rank-4 of 7 sorted values is 3 (bucket 1, floor 2).
        assert_eq!(h.p50(), 2);
        // q >= 1 returns the exact maximum, not a bucket floor.
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_eq!(h.mean_ns(), 1_001_106 / 7);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.max_ns, 0);
    }

    #[test]
    fn latency_histogram_merge_equals_union() {
        let (mut a, mut b, mut u) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for ns in [5u64, 80, 3000] {
            a.record(ns);
            u.record(ns);
        }
        for ns in [1u64, 80, 1 << 40] {
            b.record(ns);
            u.record(ns);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn atomic_latency_histogram_snapshot_matches_plain() {
        let atomic = AtomicLatencyHistogram::new();
        let mut plain = LatencyHistogram::new();
        for ns in [0u64, 7, 129, 129, 65_536] {
            atomic.record(ns);
            plain.record(ns);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn latency_json_buckets_are_sparse() {
        let mut h = LatencyHistogram::new();
        h.record(1);
        h.record(1024);
        h.record(1024);
        assert_eq!(h.to_json_buckets(), "[[0,1],[10,2]]");
        assert_eq!(LatencyHistogram::new().to_json_buckets(), "[]");
    }

    #[test]
    fn noop_recorder_is_disabled() {
        const { assert!(!NoopRecorder::ENABLED) };
        const { assert!(MetricsRecorder::ENABLED) };
        // Hooks are callable and inert.
        let mut n = NoopRecorder;
        n.run_start(5);
        n.cycle_start(0, 1);
        n.wire_claims(0, 1, 1, 1, 1);
        n.cycle_end(0, 1);
    }
}
