//! E12 — §II / Fig. 2: delivery-cycle time is O(lg n) for fixed payload,
//! measured on the bit-serial machine simulator.

use crate::tables::{f, Table};
use ft_core::{FatTree, Message};
use ft_sim::{simulate_cycle, ChannelUtilization, SimConfig, SwitchKind};
use ft_workloads::random_permutation;

/// Run E12.
pub fn run() -> Vec<Table> {
    let mut rng = super::rng();
    let payload = 64u32;
    let mut t = Table::new(
        format!("E12 — bit-serial cycle time (payload = {payload} bits, ideal switches)"),
        &[
            "n",
            "lg n",
            "cycle ticks",
            "2(2lgn−1)+payload",
            "delivered",
            "peak util",
        ],
    );
    for &lgn in &[4u32, 6, 8, 10] {
        let n = 1u32 << lgn;
        let ft = FatTree::new(n, ft_core::CapacityProfile::FullDoubling);
        let msgs: Vec<Message> = random_permutation(n, &mut rng).into_vec();
        let cfg = SimConfig {
            payload_bits: payload,
            switch: SwitchKind::Ideal,
            ..Default::default()
        };
        let rep = simulate_cycle(&ft, &msgs, &cfg);
        let util = ChannelUtilization::of_cycle(&ft, &rep.channel_use);
        t.row(vec![
            n.to_string(),
            lgn.to_string(),
            rep.ticks.to_string(),
            (2 * (2 * lgn - 1) + payload).to_string(),
            format!("{}/{}", rep.delivered.len(), msgs.len()),
            f(util.peak()),
        ]);
    }
    t.note("Measured ticks equal the model exactly when some message crosses the root:");
    t.note("2 ticks per node (M bit + address bit) over 2·lg n − 1 nodes, then the payload");
    t.note("streams behind the established path. Time is O(lg n) — §II's claim.");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_ticks_match_model() {
        let t = super::run();
        for row in &t[0].rows {
            let ticks: u32 = row[2].parse().unwrap();
            let model: u32 = row[3].parse().unwrap();
            assert!(ticks <= model, "cycle slower than the model: {row:?}");
            assert!(ticks + 8 >= model, "cycle implausibly fast: {row:?}");
        }
    }
}
