//! E14 — Theorem 4 constructively: the Leighton–Rosenberg-style recursive
//! 3-D layout of a universal fat-tree, with explicit node boxes.

use crate::tables::{f, Table};
use ft_core::FatTree;
use ft_layout::{cost, FatTreeLayout};

/// Run E14.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E14 — constructive 3-D layout vs the Theorem 4 volume law",
        &[
            "n",
            "w",
            "layout volume",
            "law (w·lg(n/w))^(3/2)",
            "ratio",
            "aspect",
            "machine box",
        ],
    );
    for &lgn in &[8u32, 10, 12, 14] {
        let n = 1u32 << lgn;
        for wsel in [2 * lgn / 3, (5 * lgn) / 6, lgn] {
            let w = 1u64 << wsel;
            let ft = FatTree::universal(n, w);
            let layout = FatTreeLayout::build(&ft);
            let law = cost::theorem4_volume_law(n as u64, w);
            let d = layout.level_dims[0];
            t.row(vec![
                n.to_string(),
                w.to_string(),
                f(layout.volume),
                f(law),
                f(layout.volume / law),
                f(layout.aspect_ratio()),
                format!("{}×{}×{}", f(d[0]), f(d[1]), f(d[2])),
            ]);
        }
    }
    t.note("Per w-scaling the ratio sits in a constant band — the constructive layout");
    t.note("achieves the Theorem 4 shape (its constant is dominated by the 19-components-");
    t.note("per-wire switch slabs). Boxes stay within a constant aspect ratio; Thompson's");
    t.note("slicing (Lemma 3) could re-cube them at a constant volume factor.");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e14_ratio_band_per_scaling() {
        let t = super::run();
        // Group rows by w-selection (3 per n): ratio across n within 50×.
        for sel in 0..3 {
            let ratios: Vec<f64> = t[0]
                .rows
                .iter()
                .skip(sel)
                .step_by(3)
                .map(|r| r[4].parse().unwrap())
                .collect();
            let max = ratios.iter().cloned().fold(0.0f64, f64::max);
            let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                max / min < 50.0,
                "ratio band too wide for selection {sel}: {ratios:?}"
            );
        }
    }
}
