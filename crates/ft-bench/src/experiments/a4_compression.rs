//! A4 — ablation: post-compressing Theorem 1 schedules (greedy cycle
//! merging) quantifies how loose the 2·λ·lg n analysis is in practice.

use crate::tables::{f, Table};
use ft_core::{cycle_lower_bound, FatTree};
use ft_sched::{compress_schedule, schedule_theorem1};
use ft_workloads::{balanced_k_relation, local_traffic, total_exchange};

/// Run A4.
pub fn run() -> Vec<Table> {
    let mut rng = super::rng();
    let mut t = Table::new(
        "A4 — schedule compression: Theorem 1 output vs greedily merged cycles",
        &[
            "n",
            "workload",
            "lower bound",
            "d thm1",
            "d compressed",
            "gain",
            "gap to LB",
        ],
    );
    for &n in &[256u32, 1024] {
        let ft = FatTree::universal(n, (n / 4) as u64);
        let cases: Vec<(String, ft_core::MessageSet)> = vec![
            (
                "balanced 8-relation".into(),
                balanced_k_relation(n, 8, &mut rng),
            ),
            (
                "local traffic k=4".into(),
                local_traffic(n, 4, 0.3, &mut rng),
            ),
            ("total exchange".into(), total_exchange(n.min(128))),
        ];
        for (name, msgs) in cases {
            // total_exchange uses a smaller n; build a matching tree.
            let ftree = if name == "total exchange" {
                FatTree::universal(n.min(128), (n.min(128) / 4) as u64)
            } else {
                ft.clone()
            };
            let lb = cycle_lower_bound(&ftree, &msgs);
            let (schedule, _) = schedule_theorem1(&ftree, &msgs);
            let before = schedule.num_cycles();
            let compressed = compress_schedule(&ftree, schedule);
            compressed.validate(&ftree, &msgs).expect("still valid");
            t.row(vec![
                ftree.n().to_string(),
                name,
                lb.to_string(),
                before.to_string(),
                compressed.num_cycles().to_string(),
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - compressed.num_cycles() as f64 / before as f64)
                ),
                f(compressed.num_cycles() as f64 / lb as f64),
            ]);
        }
    }
    t.note("Merging recovers the slack Theorem 1's level-by-level analysis leaves (cycles");
    t.note("from different levels rarely conflict). After compression the schedule sits");
    t.note("within a small factor of the max(⌈λ⌉, wire-time) lower bound.");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn a4_compression_never_hurts() {
        let t = super::run();
        for row in &t[0].rows {
            let before: usize = row[3].parse().unwrap();
            let after: usize = row[4].parse().unwrap();
            let lb: usize = row[2].parse().unwrap();
            assert!(after <= before);
            assert!(after >= lb);
        }
    }
}
