//! Bench for E4/E5/E11: decomposition, pearls, balancing.

use ft_bench::timing::bench;
use ft_layout::{balance_decomposition, split_necklace, DecompTree, Placement};

fn main() {
    let p = Placement::grid3d(4096, 1.0);
    bench("decomp_tree_grid3d_4096", || DecompTree::build(&p, 1.0));

    let long: Vec<bool> = (0..4096).map(|i| i % 3 == 0).collect();
    let short: Vec<bool> = (0..1024).map(|i| i % 2 == 0).collect();
    bench("split_necklace_5120", || split_necklace(&long, &short));

    let r = 12u32;
    let occupied: Vec<bool> = (0..(1usize << r)).map(|i| i % 4 == 1).collect();
    let ws: Vec<f64> = (0..=r).map(|j| 1e6 / 4f64.powf(j as f64 / 3.0)).collect();
    bench("balance_4096_slots", || {
        balance_decomposition(&occupied, &ws)
    });

    let ft = ft_core::FatTree::universal(1 << 14, 1 << 10);
    bench("fat_tree_layout_n2^14", || {
        ft_layout::FatTreeLayout::build(&ft)
    });
}
