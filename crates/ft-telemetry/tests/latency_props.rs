//! Property tests for the log2 latency histogram, run over seeded
//! pseudo-random workloads (hand-rolled splitmix — the workspace is
//! dependency-free, so no proptest):
//!
//! 1. **Percentile accuracy**: for every quantile checked, the histogram's
//!    answer lands in the same log2 bucket as the exact order statistic of
//!    the sorted observation vector — i.e. within one binary order of
//!    magnitude, which is the advertised contract.
//! 2. **Merge = union**: `merge(a, b)` is exactly the histogram that
//!    recorded the concatenation of both observation streams, including
//!    the exact count / sum / max side-channels.

use ft_telemetry::{latency_bucket, LatencyHistogram};

/// splitmix64 — deterministic, seedable, good enough spread for tests.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A duration with a log-uniform-ish spread: pick a magnitude in
    /// `0..=shift_max` bits, then a value below it. Exercises every bucket
    /// class a serve pipeline would ever touch (ns .. minutes).
    fn duration(&mut self, shift_max: u32) -> u64 {
        let shift = self.next() % (shift_max as u64 + 1);
        self.next() & ((1u64 << shift) | ((1u64 << shift) - 1))
    }
}

/// Exact order statistic matching `LatencyHistogram::quantile`'s rank rule:
/// the `ceil(q·count)`-th smallest observation (1-based, clamped).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn quantiles_within_one_log2_bucket_of_exact() {
    for seed in 1..=20u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D));
        let len = 1 + (rng.next() % 2000) as usize;
        let mut vals = Vec::with_capacity(len);
        let mut h = LatencyHistogram::new();
        for _ in 0..len {
            let ns = rng.duration(36);
            vals.push(ns);
            h.record(ns);
        }
        vals.sort_unstable();
        for q in [0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999] {
            let exact = exact_quantile(&vals, q);
            let approx = h.quantile(q);
            assert_eq!(
                latency_bucket(approx),
                latency_bucket(exact),
                "seed {seed} q {q}: histogram said {approx}ns, exact is {exact}ns \
                 — not within one log2 bucket"
            );
            assert!(
                approx <= exact,
                "bucket floor must lower-bound the exact value"
            );
        }
        assert_eq!(
            h.quantile(1.0),
            *vals.last().unwrap(),
            "q=1 is the exact max"
        );
        assert_eq!(h.max_ns, *vals.last().unwrap());
        assert_eq!(h.count, len as u64);
    }
}

#[test]
fn merge_equals_recording_the_union() {
    for seed in 1..=20u64 {
        let mut rng = Rng(seed.wrapping_mul(0xA24B_AED4_963E_E407));
        let (la, lb) = ((rng.next() % 500) as usize, (rng.next() % 500) as usize);
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut union = LatencyHistogram::new();
        for _ in 0..la {
            let ns = rng.duration(40);
            a.record(ns);
            union.record(ns);
        }
        for _ in 0..lb {
            let ns = rng.duration(40);
            b.record(ns);
            union.record(ns);
        }
        a.merge(&b);
        assert_eq!(a, union, "seed {seed}: merge(a,b) != record(union)");
        // Merging the empty histogram is the identity.
        let before = a;
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
    }
}
