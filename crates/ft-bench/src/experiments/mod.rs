//! One module per experiment; see crate docs and DESIGN.md §3.

pub mod a1_capacity_ablation;
pub mod a2_scheduler_ablation;
pub mod a3_switch_ablation;
pub mod a4_compression;
pub mod e10_online;
pub mod e11_node_box;
pub mod e12_bit_serial;
pub mod e13_emulation;
pub mod e14_layout;
pub mod e15_locality;
pub mod e16_faults;
pub mod e1_theorem1;
pub mod e2_corollary2;
pub mod e3_hardware_cost;
pub mod e4_decomposition;
pub mod e5_balance;
pub mod e6_universality;
pub mod e7_finite_element;
pub mod e8_concentrators;
pub mod e9_permutation;

use ft_core::rng::SplitMix64;

/// The deterministic RNG every experiment uses (reproducible tables).
pub fn rng() -> SplitMix64 {
    SplitMix64::seed_from_u64(0x1985_0C70)
}
