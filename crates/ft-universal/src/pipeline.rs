//! The end-to-end Theorem 10 measurement: R's time vs. the fat-tree's time.

use crate::bounds::{flux_report, FluxReport};
use crate::identify::Identification;
use ft_core::rng::SplitMix64;
use ft_core::{lg, MessageSet};
use ft_networks::{simulate_delivery, FixedConnectionNetwork};
use ft_sched::schedule_theorem1;

/// One universality measurement.
#[derive(Clone, Debug)]
pub struct SimulationReport {
    /// Competitor network name.
    pub network: String,
    /// Processors `n` (network side).
    pub n: usize,
    /// Shared hardware volume `v`.
    pub volume: f64,
    /// Fat-tree root capacity `w(v)`.
    pub root_capacity: u64,
    /// Steps the network needed for the message set.
    pub t_network: usize,
    /// Fat-tree load factor of the translated set.
    pub lambda: f64,
    /// Delivery cycles of the Theorem 1 schedule.
    pub cycles: usize,
    /// Fat-tree time: cycles × Θ(lg n) switching ticks per cycle.
    pub t_fat_tree: usize,
    /// Measured slowdown `t_fat_tree / t_network`.
    pub slowdown: f64,
    /// Theorem 10's predicted slowdown `O(lg³ n)` (unit constant).
    pub slowdown_bound: f64,
    /// Flux-bound constants from the proof.
    pub flux: FluxReport,
}

/// Run the full Theorem 10 pipeline: identify, measure `t` on `net`,
/// translate, schedule on the fat-tree, and compare.
pub fn simulate_on_fat_tree(
    net: &dyn FixedConnectionNetwork,
    msgs: &MessageSet,
    gamma: f64,
    rng: &mut SplitMix64,
) -> SimulationReport {
    let id = Identification::build(net, gamma);
    let out = simulate_delivery(net, msgs, 1, rng);
    let translated = id.translate(msgs);
    let (schedule, stats) = schedule_theorem1(&id.fat_tree, &translated);
    debug_assert!(schedule.validate(&id.fat_tree, &translated).is_ok());

    let lgn = lg(id.fat_tree.n() as u64) as usize;
    // A delivery cycle costs Θ(lg n) ticks (constant payload assumed equal
    // on both machines, so it cancels in the ratio).
    let t_ft = schedule.num_cycles() * lgn.max(1);
    let t_net = out.steps.max(1);
    let n = id.fat_tree.n() as u64;
    let v23 = id.volume.powf(2.0 / 3.0);
    let cap_factor = ((n as f64 / v23).max(2.0)).log2();
    let bound = cap_factor * (lgn * lgn) as f64;

    let flux = flux_report(&id, &translated, out.steps, net.degree());
    SimulationReport {
        network: net.name(),
        n: net.n(),
        volume: id.volume,
        root_capacity: id.root_capacity,
        t_network: t_net,
        lambda: stats.load_factor,
        cycles: schedule.num_cycles(),
        t_fat_tree: t_ft,
        slowdown: t_ft as f64 / t_net as f64,
        slowdown_bound: bound,
        flux,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_networks::{Hypercube, Mesh2D, Mesh3D, TreeMachine};
    use ft_workloads::{bit_complement, random_permutation};

    fn rng() -> SplitMix64 {
        SplitMix64::seed_from_u64(0xF00D)
    }

    #[test]
    fn mesh3d_random_permutation_slowdown_is_polylog() {
        let net = Mesh3D::new(4);
        let mut r = rng();
        let m = random_permutation(64, &mut r);
        let rep = simulate_on_fat_tree(&net, &m, 1.0, &mut r);
        assert_eq!(rep.n, 64);
        assert!(rep.t_network >= 1);
        assert!(rep.cycles >= 1);
        // The measured slowdown should sit within a constant of the lg³ n
        // bound (generous factor for small-n effects).
        assert!(
            rep.slowdown <= 4.0 * rep.slowdown_bound.max(1.0),
            "slowdown {} vs bound {}",
            rep.slowdown,
            rep.slowdown_bound
        );
    }

    #[test]
    fn hypercube_complement_traffic() {
        // Bit-complement is one hop on a hypercube dimension route… no —
        // it's d hops, but congestion-free. The equal-volume fat-tree gets
        // a large root capacity from the hypercube's n^(3/2) volume, so λ
        // stays small and the slowdown is polylogarithmic.
        let net = Hypercube::new(6);
        let m = bit_complement(64);
        let mut r = rng();
        let rep = simulate_on_fat_tree(&net, &m, 1.0, &mut r);
        assert!(
            rep.root_capacity >= 16,
            "hypercube volume should buy capacity"
        );
        assert!(rep.slowdown <= 4.0 * rep.slowdown_bound.max(1.0));
    }

    #[test]
    fn mesh2d_hotspot_fat_tree_can_even_win() {
        // A 2-D mesh serializes a hotspot badly (t ≈ n); the fat-tree also
        // serializes at the destination leaf (λ ≈ n), so the *ratio* stays
        // small — universality in action on a worst case.
        let net = Mesh2D::new(8, 8);
        let m = ft_workloads::all_to_one(64, 0);
        let mut r = rng();
        let rep = simulate_on_fat_tree(&net, &m, 1.0, &mut r);
        assert!(
            rep.slowdown <= 2.0 * rep.slowdown_bound.max(1.0),
            "slowdown {} bound {}",
            rep.slowdown,
            rep.slowdown_bound
        );
    }

    #[test]
    fn tree_machine_is_easily_simulated() {
        let net = TreeMachine::new(6); // 63 processors
        let mut r = rng();
        let m = random_permutation(63, &mut r);
        let rep = simulate_on_fat_tree(&net, &m, 1.0, &mut r);
        assert_eq!(rep.n, 63);
        // Padded to 64-leaf fat-tree.
        assert!(rep.cycles >= 1);
        assert!(rep.slowdown <= 6.0 * rep.slowdown_bound.max(1.0));
    }
}
