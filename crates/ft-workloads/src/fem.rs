//! Planar finite-element workloads (§I).
//!
//! "Many finite-element problems are planar, and planar graphs have a
//! bisection width of size O(√n)… a natural implementation of a parallel
//! finite-element algorithm would waste much of the communication bandwidth
//! provided by a hypercube-based routing network."
//!
//! We build a √n × √n triangulated grid — the canonical planar FEM mesh —
//! and derive the message set of one relaxation sweep: every element
//! exchanges boundary values with its mesh neighbors. With the row-major
//! processor assignment, most neighbor pairs are adjacent in fat-tree leaf
//! order, so the traffic is strongly local.

use ft_core::{Message, MessageSet};

/// A triangulated √n × √n planar grid of finite elements, one per processor.
#[derive(Clone, Debug)]
pub struct FemGrid {
    side: u32,
}

impl FemGrid {
    /// Build a grid with `side²` elements.
    pub fn new(side: u32) -> Self {
        assert!(side >= 2);
        FemGrid { side }
    }

    /// Build from processor count (must be a perfect square).
    pub fn with_n(n: u32) -> Self {
        let side = (n as f64).sqrt().round() as u32;
        assert_eq!(side * side, n, "FEM grid needs a perfect square");
        FemGrid::new(side)
    }

    /// Number of elements / processors.
    pub fn n(&self) -> u32 {
        self.side * self.side
    }

    /// Grid side length.
    pub fn side(&self) -> u32 {
        self.side
    }

    fn id(&self, r: u32, c: u32) -> u32 {
        r * self.side + c
    }

    /// Undirected neighbor edges of the triangulated grid: 4-neighbors plus
    /// one diagonal per cell (the triangulation diagonal).
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let s = self.side;
        let mut e = Vec::new();
        for r in 0..s {
            for c in 0..s {
                if c + 1 < s {
                    e.push((self.id(r, c), self.id(r, c + 1)));
                }
                if r + 1 < s {
                    e.push((self.id(r, c), self.id(r + 1, c)));
                }
                if r + 1 < s && c + 1 < s {
                    e.push((self.id(r, c), self.id(r + 1, c + 1)));
                }
            }
        }
        e
    }

    /// The message set of one halo-exchange sweep: both directions of every
    /// mesh edge, with elements assigned to processors in **row-major**
    /// order.
    pub fn sweep_messages(&self) -> MessageSet {
        let mut m = MessageSet::new();
        for (a, b) in self.edges() {
            m.push(Message::new(a, b));
            m.push(Message::new(b, a));
        }
        m
    }

    /// The same sweep with elements assigned to processors in **Morton
    /// (Z-order)** so that every fat-tree subtree holds a compact 2-D block.
    /// Row-major puts each grid row in its own subtree and pinches mid-tree
    /// channels (load Θ(√n) at fixed capacity); Morton keeps the demand
    /// across every subtree boundary proportional to the block perimeter,
    /// which a universal fat-tree with root capacity Θ(n^(2/3)) absorbs with
    /// λ = O(1). Requires `side` to be a power of two.
    pub fn sweep_messages_morton(&self) -> MessageSet {
        assert!(
            self.side.is_power_of_two(),
            "Morton order needs a power-of-two side"
        );
        let mut m = MessageSet::new();
        let morton = |id: u32| {
            let (r, c) = (id / self.side, id % self.side);
            interleave(r, c)
        };
        for (a, b) in self.edges() {
            let (a, b) = (morton(a), morton(b));
            m.push(Message::new(a, b));
            m.push(Message::new(b, a));
        }
        m
    }

    /// The bisection width of the grid: cutting between columns crosses
    /// Θ(side) = Θ(√n) edges (Lipton–Tarjan planar separator scale).
    pub fn bisection_width(&self) -> u32 {
        // vertical + diagonal edges across the middle column boundary
        2 * self.side - 1
    }
}

/// Interleave the bits of `r` (odd positions) and `c` (even positions):
/// the Morton / Z-order index.
fn interleave(r: u32, c: u32) -> u32 {
    let mut out = 0u32;
    for bit in 0..16 {
        out |= ((c >> bit) & 1) << (2 * bit);
        out |= ((r >> bit) & 1) << (2 * bit + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::{load_factor, CapacityProfile, FatTree};

    #[test]
    fn edge_count() {
        let g = FemGrid::new(4);
        // horizontal 3·4 + vertical 4·3 + diagonal 3·3 = 12+12+9 = 33
        assert_eq!(g.edges().len(), 33);
        assert_eq!(g.sweep_messages().len(), 66);
    }

    #[test]
    fn neighbors_within_range() {
        let g = FemGrid::with_n(64);
        for (a, b) in g.edges() {
            assert!(a < 64 && b < 64 && a != b);
        }
    }

    #[test]
    fn bisection_is_sqrt_n() {
        let g = FemGrid::new(16);
        assert_eq!(g.bisection_width(), 31);
        assert!(f64::from(g.bisection_width()) < 2.0 * (g.n() as f64).sqrt());
    }

    #[test]
    fn fem_traffic_fits_minimal_universal_tree_with_morton_order() {
        // §I thesis: planar problems don't need hypercube bandwidth. With
        // Morton element order, a *minimum-capacity* universal fat-tree
        // (w = n^(2/3), the cheapest in the family) absorbs the sweep with
        // constant load factor — bounded by the element degree plus block
        // perimeter effects, independent of n.
        for n in [64u32, 256, 1024] {
            let g = FemGrid::with_n(n);
            let m = g.sweep_messages_morton();
            let w = (n as f64).powf(2.0 / 3.0).ceil() as u64;
            let ft = FatTree::universal(n, w);
            let lam = load_factor(&ft, &m);
            assert!(lam <= 16.0, "n = {n}: Morton FEM λ = {lam} not O(1)");
        }
        // But on a unit-capacity skinny tree the bisection Θ(√n) bottlenecks.
        let g = FemGrid::with_n(256);
        let unit = FatTree::new(256, CapacityProfile::Constant(1));
        assert!(load_factor(&unit, &g.sweep_messages_morton()) >= 16.0);
    }

    #[test]
    fn morton_beats_row_major_on_universal_tree() {
        // Constant capacity 6 = element degree, so leaf channels are never
        // the bottleneck and the mapping's mid-tree behaviour shows.
        let n = 256u32;
        let g = FemGrid::with_n(n);
        let ft = FatTree::new(n, CapacityProfile::Constant(6));
        let row = load_factor(&ft, &g.sweep_messages());
        let morton = load_factor(&ft, &g.sweep_messages_morton());
        assert!(
            morton < row,
            "Morton order should reduce load factor: {morton} vs {row}"
        );
    }

    #[test]
    fn morton_sweep_is_a_relabeling() {
        let g = FemGrid::with_n(16);
        let a = g.sweep_messages();
        let b = g.sweep_messages_morton();
        assert_eq!(a.len(), b.len());
        // Same multiset of path endpoints up to relabeling: total degree
        // distribution is preserved.
        let degs = |m: &ft_core::MessageSet| {
            let mut d = vec![0u32; 16];
            for msg in m {
                d[msg.src.idx()] += 1;
            }
            d.sort_unstable();
            d
        };
        assert_eq!(degs(&a), degs(&b));
    }
}
