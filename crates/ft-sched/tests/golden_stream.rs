//! Streamed-ingest equivalence for the schedulers: feeding a lazy generator
//! through `SchedArena::schedule_stream` / `OnlineArena::run_stream` must be
//! byte-identical to materializing the same stream and running the classic
//! `MessageSet` paths — per family, per thread count, arena reused across
//! runs. Together with `golden_scheduler.rs` / `golden_online.rs` (classic
//! paths vs. the reference engines) this pins the streamed paths to the
//! original semantics.

use ft_core::rng::SplitMix64;
use ft_core::{FatTree, MessageStream};
use ft_sched::{OnlineArena, OnlineConfig, SchedArena, Schedule, Theorem1Stats};
use ft_workloads::{
    AllReduceStream, AllToAllStream, BurstyStream, HotspotStream, IncastStream, PermutationStream,
    RelationStream,
};

/// Every lazy generator family at a given size, boxed for uniform driving.
fn streams(n: u32, seed: u64) -> Vec<Box<dyn MessageStream>> {
    vec![
        Box::new(PermutationStream::new(n, seed)),
        Box::new(HotspotStream::new(n, 2, 3, seed)),
        Box::new(RelationStream::new(n, 2, seed)),
        Box::new(BurstyStream::new(n, 2 * n as usize, 8, seed)),
        Box::new(IncastStream::new(n, (n / 2).max(1), 4, seed)),
        Box::new(AllReduceStream::new(n, (n / 4).max(2).min(n), seed)),
        Box::new(AllToAllStream::new(n, (n / 8).max(2).min(n))),
    ]
}

fn assert_schedules_equal(
    want: &(Schedule, Theorem1Stats),
    got: &(Schedule, Theorem1Stats),
    tag: &str,
) {
    assert_eq!(
        got.0.cycles(),
        want.0.cycles(),
        "schedule cycles diverged [{tag}]"
    );
    assert_eq!(
        got.1.cycles_per_level, want.1.cycles_per_level,
        "cycles_per_level diverged [{tag}]"
    );
    assert_eq!(
        got.1.load_factor, want.1.load_factor,
        "load_factor diverged [{tag}]"
    );
    assert_eq!(
        got.1.total_cycles, want.1.total_cycles,
        "total_cycles diverged [{tag}]"
    );
}

#[test]
fn schedule_stream_matches_materialized_everywhere() {
    let mut cases = 0usize;
    for n in [32u32, 64] {
        let ft = FatTree::universal(n, (n as u64 / 4).max(1));
        let mut classic = SchedArena::new(&ft);
        let mut streamed = SchedArena::new(&ft);
        for seed in [7u64, 1009] {
            for threads in [1usize, 4] {
                for stream in streams(n, seed) {
                    let set = stream.collect_set();
                    let tag = format!(
                        "family={} n={n} seed={seed} threads={threads}",
                        stream.family()
                    );
                    let want = classic.schedule(&ft, &set, threads);
                    let got = streamed.schedule_stream(&ft, stream.as_ref(), threads);
                    assert_schedules_equal(&want, &got, &tag);
                    // The emitted schedule must still be a valid partition of
                    // the stream's multiset into one-cycle sets.
                    got.0
                        .validate(&ft, &set)
                        .unwrap_or_else(|e| panic!("streamed schedule invalid [{tag}]: {e}"));
                    cases += 1;
                }
            }
        }
    }
    assert!(cases >= 56, "only {cases} streamed scheduler golden cases");
}

#[test]
fn run_stream_matches_materialized_everywhere() {
    for n in [32u32, 64] {
        let ft = FatTree::universal(n, (n as u64 / 4).max(1));
        let mut classic = OnlineArena::new(&ft);
        let mut streamed = OnlineArena::new(&ft);
        for seed in [5u64, 613] {
            for threads in [0usize, 4] {
                let cfg = OnlineConfig {
                    threads,
                    ..Default::default()
                };
                for stream in streams(n, seed) {
                    let set = stream.collect_set();
                    let tag = format!(
                        "family={} n={n} seed={seed} threads={threads}",
                        stream.family()
                    );
                    // Same rng seed on both sides: the packed alive lists are
                    // identical, so the shuffles consume the same stream.
                    classic.run(
                        &ft,
                        &set,
                        &mut SplitMix64::seed_from_u64(seed ^ 0xA11E),
                        cfg,
                    );
                    streamed.run_stream(
                        &ft,
                        stream.as_ref(),
                        &mut SplitMix64::seed_from_u64(seed ^ 0xA11E),
                        cfg,
                    );
                    assert_eq!(
                        streamed.delivered_per_cycle(),
                        classic.delivered_per_cycle(),
                        "delivered_per_cycle diverged [{tag}]"
                    );
                    assert_eq!(streamed.cycles(), classic.cycles(), "cycles [{tag}]");
                    assert_eq!(
                        streamed.truncated(),
                        classic.truncated(),
                        "truncated [{tag}]"
                    );
                    assert_eq!(
                        streamed.total_delivered(),
                        stream.len(),
                        "stream length undelivered [{tag}]"
                    );
                }
            }
        }
    }
}

#[test]
fn stream_ingest_reaches_the_recorder() {
    let n = 32u32;
    let ft = FatTree::universal(n, 8);
    let stream = PermutationStream::new(n, 3);
    let mut rec = ft_telemetry::MetricsRecorder::new();
    SchedArena::new(&ft).schedule_stream_with(&ft, &stream, 1, &mut rec);
    OnlineArena::new(&ft).run_stream_with(
        &ft,
        &stream,
        &mut SplitMix64::seed_from_u64(1),
        OnlineConfig::default(),
        &mut rec,
    );
    let perm: Vec<_> = rec
        .stream_families
        .iter()
        .filter(|(f, _, _)| *f == "permutation")
        .collect();
    assert_eq!(perm.len(), 1, "one accumulated family row");
    assert_eq!(perm[0].1, 2, "two streamed runs recorded");
    assert_eq!(perm[0].2, 2 * n as u64, "message totals accumulate");
}
