//! Store-and-forward delivery simulation for fixed-connection networks.
//!
//! Measures the time `t` a network `R` needs to deliver a message set `M` —
//! the left-hand side of Theorem 10's comparison. Each directed link moves
//! at most `link_capacity` messages per step; messages follow the network's
//! deterministic route; contention is resolved in random order per step
//! (oblivious FIFO-with-random-tiebreak, the standard neutral model).

use crate::traits::FixedConnectionNetwork;
use ft_core::rng::SplitMix64;
use ft_core::MessageSet;
use ft_telemetry::{NoopRecorder, Recorder};
use std::collections::HashMap;

/// Result of a delivery simulation.
#[derive(Clone, Debug)]
pub struct DeliveryOutcome {
    /// Steps until the last message arrived.
    pub steps: usize,
    /// Number of messages delivered (always all of them; the process is
    /// deadlock-free since buffers are unbounded).
    pub delivered: usize,
    /// Total hop-traversals performed (network work).
    pub total_hops: usize,
}

/// Simulate delivering `msgs` on `net`. `link_capacity` is the number of
/// messages a directed link carries per step (1 = unit-bandwidth wires).
pub fn simulate_delivery(
    net: &dyn FixedConnectionNetwork,
    msgs: &MessageSet,
    link_capacity: usize,
    rng: &mut SplitMix64,
) -> DeliveryOutcome {
    simulate_delivery_with(net, msgs, link_capacity, rng, &mut NoopRecorder)
}

/// [`simulate_delivery`] with a telemetry [`Recorder`] observing the run:
/// [`Recorder::cycle_start`] / [`Recorder::cycle_end`] per step and one
/// [`Recorder::channel_load`] per used directed link per step (baseline
/// networks have no channel levels, so links report as level 0). With a
/// [`NoopRecorder`] this is exactly [`simulate_delivery`].
pub fn simulate_delivery_with<R: Recorder>(
    net: &dyn FixedConnectionNetwork,
    msgs: &MessageSet,
    link_capacity: usize,
    rng: &mut SplitMix64,
    rec: &mut R,
) -> DeliveryOutcome {
    assert!(link_capacity >= 1);
    // Precompute paths; messages already at destination are delivered at t=0.
    let mut paths: Vec<Vec<usize>> = Vec::with_capacity(msgs.len());
    for m in msgs {
        let s = m.src.idx();
        let d = m.dst.idx();
        assert!(
            s < net.n() && d < net.n(),
            "message endpoints outside network"
        );
        paths.push(net.route(s, d));
    }
    let mut pos: Vec<usize> = vec![0; paths.len()]; // index into path
    let mut live: Vec<usize> = (0..paths.len()).filter(|&i| paths[i].len() > 1).collect();
    let delivered_at_start = paths.len() - live.len();

    let mut steps = 0usize;
    let mut total_hops = 0usize;
    let mut used: HashMap<(u32, u32), usize> = HashMap::new();
    while !live.is_empty() {
        if R::ENABLED {
            rec.cycle_start(steps as u32, live.len() as u32);
        }
        steps += 1;
        used.clear();
        rng.shuffle(&mut live);
        let mut still = Vec::with_capacity(live.len());
        for &i in &live {
            let here = paths[i][pos[i]];
            let next = paths[i][pos[i] + 1];
            let key = (here as u32, next as u32);
            let u = used.entry(key).or_insert(0);
            if *u < link_capacity {
                *u += 1;
                pos[i] += 1;
                total_hops += 1;
                if pos[i] + 1 < paths[i].len() {
                    still.push(i);
                }
            } else {
                still.push(i);
            }
        }
        if R::ENABLED {
            for &load in used.values() {
                rec.channel_load(0, load as u64, link_capacity as u64);
            }
            rec.cycle_end(steps as u32 - 1, (live.len() - still.len()) as u32);
        }
        live = still;
        debug_assert!(steps <= 1_000_000, "delivery stuck");
    }

    DeliveryOutcome {
        steps,
        delivered: delivered_at_start + paths.len() - delivered_at_start,
        total_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::Hypercube;
    use crate::mesh::Mesh2D;
    use ft_core::Message;

    fn rng() -> SplitMix64 {
        SplitMix64::seed_from_u64(99)
    }

    #[test]
    fn empty_set_zero_steps() {
        let h = Hypercube::new(3);
        let out = simulate_delivery(&h, &MessageSet::new(), 1, &mut rng());
        assert_eq!(out.steps, 0);
        assert_eq!(out.total_hops, 0);
    }

    #[test]
    fn local_messages_take_no_time() {
        let h = Hypercube::new(3);
        let m: MessageSet = (0..8).map(|i| Message::new(i, i)).collect();
        let out = simulate_delivery(&h, &m, 1, &mut rng());
        assert_eq!(out.steps, 0);
        assert_eq!(out.delivered, 8);
    }

    #[test]
    fn single_message_takes_path_length() {
        let m2 = Mesh2D::square(16);
        let m: MessageSet = [Message::new(0, 15)].into_iter().collect();
        let out = simulate_delivery(&m2, &m, 1, &mut rng());
        assert_eq!(out.steps, 6); // Manhattan distance in a 4×4 mesh
        assert_eq!(out.total_hops, 6);
    }

    #[test]
    fn congestion_serializes() {
        // All processors of a 4×4 mesh send to corner 0: the two final
        // links into 0 carry everything, so steps ≥ (n−1)/2.
        let m2 = Mesh2D::square(16);
        let m: MessageSet = (1..16).map(|i| Message::new(i, 0)).collect();
        let out = simulate_delivery(&m2, &m, 1, &mut rng());
        assert!(
            out.steps >= 7,
            "steps {} too small for a hotspot",
            out.steps
        );
        assert_eq!(out.delivered, 15);
    }

    #[test]
    fn higher_link_capacity_is_faster() {
        let m2 = Mesh2D::square(64);
        let msgs: MessageSet = (1..64).map(|i| Message::new(i, 0)).collect();
        let slow = simulate_delivery(&m2, &msgs, 1, &mut rng());
        let fast = simulate_delivery(&m2, &msgs, 4, &mut rng());
        assert!(fast.steps <= slow.steps);
        assert_eq!(fast.total_hops, slow.total_hops);
    }

    #[test]
    fn recorder_does_not_change_outcome_and_accounts_every_delivery() {
        use ft_telemetry::MetricsRecorder;
        let m2 = Mesh2D::square(16);
        let m: MessageSet = (1..16).map(|i| Message::new(i, 0)).collect();
        let plain = simulate_delivery(&m2, &m, 1, &mut rng());
        let mut rec = MetricsRecorder::new();
        let traced = simulate_delivery_with(&m2, &m, 1, &mut rng(), &mut rec);
        assert_eq!(plain.steps, traced.steps);
        assert_eq!(plain.total_hops, traced.total_hops);
        assert_eq!(rec.cycles as usize, traced.steps);
        // Every non-local message retires in exactly one step.
        assert_eq!(rec.total_delivered(), 15);
        // Links report as level 0; a hotspot must saturate some of them.
        assert!(rec.load_hist[0].total() > 0);
        assert!(
            rec.load_hist[0].buckets[7] > 0,
            "no saturated link at a hotspot"
        );
    }

    #[test]
    fn random_permutation_on_hypercube_is_fast() {
        let h = Hypercube::new(6);
        let n = 64u32;
        let m: MessageSet = (0..n).map(|i| Message::new(i, (i * 37 + 11) % n)).collect();
        let out = simulate_delivery(&h, &m, 1, &mut rng());
        assert_eq!(out.delivered, 64);
        // Dimension-order on a random-ish permutation: O(lg n) with slack.
        assert!(out.steps <= 30, "hypercube took {} steps", out.steps);
    }
}
