//! Compiled switch settings (§II).
//!
//! "The results apply to practical situations when the settings of switches
//! can be 'compiled', as when simulating a large VLSI design or emulating a
//! fixed-connection network. Also, some of the mechanisms — such as
//! acknowledging the receipt of messages — can be omitted from the off-line
//! hardware structure, thereby reducing the complexity of the design."
//!
//! [`compile_cycle`] turns a one-cycle message set into explicit wire
//! assignments: for every message, the exact wire it occupies on every
//! channel of its path. [`execute_compiled`] replays the settings on the
//! fat-tree while checking the two hardware invariants — no two messages on
//! one wire, and every hop a legal path continuation — and returns the
//! ack-free cycle time.

use crate::protocol::MessageFrame;
use ft_core::{route::for_each_path_channel, ChannelId, FatTree, Message};
use std::collections::HashMap;

/// Compiled settings for one delivery cycle: per message, its wire on each
/// channel of its path (in path order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledCycle {
    /// `claims[i]` = the (channel, wire) sequence of message `i`.
    pub claims: Vec<Vec<(ChannelId, u32)>>,
}

impl CompiledCycle {
    /// Number of messages.
    pub fn len(&self) -> usize {
        self.claims.len()
    }

    /// True if there are no messages.
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty()
    }

    /// Total wire-slots occupied across all channels.
    pub fn total_wire_slots(&self) -> usize {
        self.claims.iter().map(|c| c.len()).sum()
    }
}

/// Compile a one-cycle message set into switch settings.
///
/// ```
/// use ft_core::{FatTree, Message};
/// use ft_sim::{compile_cycle, execute_compiled};
/// let ft = FatTree::universal(8, 8);
/// let msgs = vec![Message::new(0, 7), Message::new(3, 4)];
/// let settings = compile_cycle(&ft, &msgs).unwrap();
/// let run = execute_compiled(&ft, &msgs, &settings, 32).unwrap();
/// assert_eq!(run.delivered, 2);
/// ```
///
/// # Errors
/// Returns `Err` naming the congested channel if the set is not one-cycle
/// (compilation is exactly as strong as the ideal-concentrator assumption).
pub fn compile_cycle(ft: &FatTree, msgs: &[Message]) -> Result<CompiledCycle, String> {
    let mut next_wire: HashMap<usize, u64> = HashMap::new();
    let mut claims = Vec::with_capacity(msgs.len());
    for m in msgs {
        let mut path = Vec::new();
        let mut over: Option<ChannelId> = None;
        for_each_path_channel(ft, m, |c| {
            if over.is_some() {
                return;
            }
            let w = next_wire.entry(c.index()).or_insert(0);
            if *w >= ft.cap(c) {
                over = Some(c);
                return;
            }
            path.push((c, *w as u32));
            *w += 1;
        });
        if let Some(c) = over {
            return Err(format!(
                "not a one-cycle set: channel {c} exceeds capacity {}",
                ft.cap(c)
            ));
        }
        claims.push(path);
    }
    Ok(CompiledCycle { claims })
}

/// Outcome of executing compiled settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompiledRun {
    /// Messages delivered (always all of them; compilation fails otherwise).
    pub delivered: usize,
    /// Cycle time in bit ticks (no acknowledgment phase).
    pub ticks: u32,
}

/// Replay compiled settings, checking the hardware invariants.
///
/// # Errors
/// If two messages claim the same wire, or a claim sequence is not the
/// message's path (a miscompiled or stale setting).
pub fn execute_compiled(
    ft: &FatTree,
    msgs: &[Message],
    compiled: &CompiledCycle,
    payload_bits: u32,
) -> Result<CompiledRun, String> {
    if msgs.len() != compiled.claims.len() {
        return Err("settings do not match the message set".into());
    }
    let mut occupied: HashMap<(usize, u32), usize> = HashMap::new();
    let mut max_ticks = 0u32;
    for (i, (m, claims)) in msgs.iter().zip(&compiled.claims).enumerate() {
        // The claim sequence must be exactly the message's path.
        let mut expected = Vec::new();
        for_each_path_channel(ft, m, |c| expected.push(c));
        let got: Vec<ChannelId> = claims.iter().map(|&(c, _)| c).collect();
        if got != expected {
            return Err(format!(
                "message {i} ({m}) has a claim sequence off its path"
            ));
        }
        for &(c, w) in claims {
            if w as u64 >= ft.cap(c) {
                return Err(format!("message {i} claims nonexistent wire {w} on {c}"));
            }
            if let Some(j) = occupied.insert((c.index(), w), i) {
                return Err(format!(
                    "wire conflict on {c} wire {w}: messages {j} and {i}"
                ));
            }
        }
        let frame = MessageFrame::for_message(ft, m, payload_bits);
        if !claims.is_empty() {
            let nodes_on_path = claims.len() as u32 - 1;
            max_ticks = max_ticks.max(2 * nodes_on_path.max(1) + frame.payload_bits);
        }
    }
    Ok(CompiledRun {
        delivered: msgs.len(),
        ticks: max_ticks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::CapacityProfile;

    fn full(n: u32) -> FatTree {
        FatTree::new(n, CapacityProfile::FullDoubling)
    }

    #[test]
    fn compile_and_execute_reversal() {
        let t = full(32);
        let msgs: Vec<Message> = (0..32).map(|i| Message::new(i, 31 - i)).collect();
        let compiled = compile_cycle(&t, &msgs).expect("one-cycle set");
        let run = execute_compiled(&t, &msgs, &compiled, 16).unwrap();
        assert_eq!(run.delivered, 32);
        assert!(run.ticks >= 16);
    }

    #[test]
    fn compile_rejects_overload() {
        let t = FatTree::new(8, CapacityProfile::Constant(1));
        let msgs = vec![Message::new(0, 5), Message::new(1, 5)];
        let err = compile_cycle(&t, &msgs).unwrap_err();
        assert!(err.contains("not a one-cycle set"), "{err}");
    }

    #[test]
    fn execute_detects_wire_conflicts() {
        let t = full(8);
        let msgs = vec![Message::new(0, 4), Message::new(1, 5)];
        let mut compiled = compile_cycle(&t, &msgs).unwrap();
        // Sabotage: give message 1 message 0's wires where channels overlap…
        // simplest: duplicate message 0's claims into message 1 entirely.
        compiled.claims[1] = compiled.claims[0].clone();
        let err = execute_compiled(&t, &msgs, &compiled, 8).unwrap_err();
        assert!(
            err.contains("off its path") || err.contains("conflict"),
            "{err}"
        );
    }

    #[test]
    fn execute_detects_stale_settings() {
        let t = full(8);
        let msgs = vec![Message::new(0, 4)];
        let compiled = compile_cycle(&t, &msgs).unwrap();
        let other = vec![Message::new(0, 5)];
        assert!(execute_compiled(&t, &other, &compiled, 8).is_err());
    }

    #[test]
    fn local_messages_compile_to_nothing() {
        let t = full(8);
        let msgs = vec![Message::new(3, 3)];
        let compiled = compile_cycle(&t, &msgs).unwrap();
        assert_eq!(compiled.total_wire_slots(), 0);
        let run = execute_compiled(&t, &msgs, &compiled, 8).unwrap();
        assert_eq!(run.ticks, 0);
        assert_eq!(run.delivered, 1);
    }

    #[test]
    fn compiled_matches_simulated_delivery() {
        // Compilation and the ideal-switch simulator agree on feasibility.
        use crate::engine::{simulate_cycle, SimConfig};
        let t = FatTree::universal(64, 16);
        let msgs: Vec<Message> = (0..64).map(|i| Message::new(i, (i + 32) % 64)).collect();
        let sim = simulate_cycle(&t, &msgs, &SimConfig::default());
        let compiled = compile_cycle(&t, &msgs);
        assert_eq!(
            sim.dropped.is_empty(),
            compiled.is_ok(),
            "simulator and compiler disagree on one-cycle feasibility"
        );
    }
}
