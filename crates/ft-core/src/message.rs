//! Messages and message sets (§II, §III).
//!
//! A message set `M ⊆ P × P` is routed in *delivery cycles*; the scheduling
//! theory in `ft-sched` partitions a set into one-cycle sets.

use crate::ids::ProcId;

/// A point-to-point message `(src, dst)`.
///
/// Message *contents* are irrelevant to the routing theory (the paper omits
/// them too); `ft-sim` attaches payload bits when simulating the bit-serial
/// protocol.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Message {
    /// Sending processor.
    pub src: ProcId,
    /// Destination processor.
    pub dst: ProcId,
}

impl Message {
    /// Construct a message from processor indices.
    #[inline]
    pub fn new(src: u32, dst: u32) -> Self {
        Message {
            src: ProcId(src),
            dst: ProcId(dst),
        }
    }

    /// True if source equals destination (routes through no channels).
    #[inline]
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

impl std::fmt::Display for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}→{}", self.src, self.dst)
    }
}

/// An ordered multiset of messages.
///
/// Duplicates are allowed (the theory is stated for sets, but all results
/// hold verbatim for multisets, and k-relations need them).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct MessageSet {
    msgs: Vec<Message>,
}

impl MessageSet {
    /// The empty message set.
    pub fn new() -> Self {
        MessageSet { msgs: Vec::new() }
    }

    /// Wrap an existing vector of messages.
    pub fn from_vec(msgs: Vec<Message>) -> Self {
        MessageSet { msgs }
    }

    /// With pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        MessageSet {
            msgs: Vec::with_capacity(cap),
        }
    }

    /// Add a message.
    #[inline]
    pub fn push(&mut self, m: Message) {
        self.msgs.push(m);
    }

    /// Number of messages.
    #[inline]
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True if there are no messages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Iterate over messages.
    pub fn iter(&self) -> impl Iterator<Item = &Message> {
        self.msgs.iter()
    }

    /// Borrow the underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[Message] {
        &self.msgs
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<Message> {
        self.msgs
    }

    /// Append all messages of `other`.
    pub fn extend_from(&mut self, other: &MessageSet) {
        self.msgs.extend_from_slice(&other.msgs);
    }

    /// Sorted copy of the messages (for set-equality checks in tests: the
    /// schedule's cycles must partition the input multiset).
    pub fn sorted(&self) -> Vec<Message> {
        let mut v = self.msgs.clone();
        v.sort_unstable_by_key(|m| (m.src.0, m.dst.0));
        v
    }
}

impl FromIterator<Message> for MessageSet {
    fn from_iter<T: IntoIterator<Item = Message>>(iter: T) -> Self {
        MessageSet {
            msgs: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a MessageSet {
    type Item = &'a Message;
    type IntoIter = std::slice::Iter<'a, Message>;
    fn into_iter(self) -> Self::IntoIter {
        self.msgs.iter()
    }
}

impl IntoIterator for MessageSet {
    type Item = Message;
    type IntoIter = std::vec::IntoIter<Message>;
    fn into_iter(self) -> Self::IntoIter {
        self.msgs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = MessageSet::new();
        assert!(s.is_empty());
        s.push(Message::new(0, 5));
        s.push(Message::new(3, 3));
        assert_eq!(s.len(), 2);
        assert!(s.as_slice()[1].is_local());
        assert!(!s.as_slice()[0].is_local());
        assert_eq!(format!("{}", s.as_slice()[0]), "P0→P5");
    }

    #[test]
    fn sorted_is_stable_multiset_view() {
        let s = MessageSet::from_vec(vec![
            Message::new(2, 1),
            Message::new(0, 9),
            Message::new(2, 1),
        ]);
        let v = s.sorted();
        assert_eq!(
            v,
            vec![Message::new(0, 9), Message::new(2, 1), Message::new(2, 1)]
        );
    }

    #[test]
    fn from_iterator_and_extend() {
        let a: MessageSet = (0..4).map(|i| Message::new(i, i + 1)).collect();
        let mut b = MessageSet::with_capacity(8);
        b.extend_from(&a);
        b.extend_from(&a);
        assert_eq!(b.len(), 8);
        assert_eq!(b.iter().count(), 8);
    }
}
