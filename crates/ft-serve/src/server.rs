//! The serving shell: accept loop, per-connection reader/writer threads,
//! and the double-buffered batcher/compute pipeline.
//!
//! Thread topology (all std, no async):
//!
//! ```text
//! accept ──spawns──► reader(conn) ──admit queue──► batcher ◄─ping-pong─► compute
//!                    writer(conn) ◄────────────────┘  (encode k-1 + fill k+1
//!                                                      overlap compute of k)
//! ```
//!
//! * **readers** speak the handshake, enforce admission control (bounded
//!   in-flight queue; over-limit requests get structured `Busy` frames),
//!   and time out dead clients (no complete frame within the idle window
//!   closes the connection, so a hung client never wedges shutdown).
//! * **batcher** owns two [`BatchBuf`]s in a ping-pong with the compute
//!   thread: while compute crunches batch *k*, the batcher encodes and
//!   dispatches batch *k−1*'s responses and decodes/coalesces batch *k+1*
//!   — the decode + encode halves of the loop fully overlap the
//!   λ/refinement compute.
//! * **compute** runs [`ServeCompute::run`] and *steers admission*: each
//!   batch's λ and reject tally (via [`MetricsRecorder`]) raise or halve
//!   the effective in-flight limit between the configured ceiling and the
//!   batch width.
//!
//! [`MetricsRecorder`]: ft_telemetry::MetricsRecorder

use crate::core::{BatchBuf, ReqTiming, ServeCompute};
use crate::metrics::{
    spawn_metrics_listener, LambdaBudget, MetricsSource, ServeCounters, ServeMetrics,
};
use crate::proto::{
    self, decode_hello, encode_busy, encode_hello_ack, Engine, HelloAck, MAX_REQ_MSGS,
};
use ft_shard::wire::{self, begin_frame, end_frame, read_frame, write_frame_buf, FrameKind};
use ft_telemetry::{Event, EventKind, MetricsRecorder};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `Error` frame code: handshake shape (n, w) mismatch.
pub const ERR_SHAPE: u64 = 1;
/// `Error` frame code: malformed or out-of-order frame.
pub const ERR_PROTO: u64 = 2;
/// `Error` frame code: request payload failed validation.
pub const ERR_REQUEST: u64 = 3;

/// λ threshold above which the admission controller halves the in-flight
/// limit toward the batch width (contention feedback; see module docs).
const STEER_LAMBDA: f64 = 4.0;

/// Server configuration. `Default` gives the benchmark shape: n=256 w=64,
/// 8-slot batches, a 200 µs window, 64 requests in flight.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Solo tree leaves (power of two).
    pub n: u32,
    /// Solo root capacity.
    pub w: u64,
    /// Schedule requests coalesced per batch (power of two).
    pub slots: u32,
    /// Batching window: after the first request of a batch arrives, wait
    /// at most this long for more before dispatching.
    pub window_us: u64,
    /// Admission ceiling: maximum requests in flight (queued + batched,
    /// responses not yet dispatched). The effective limit floats between
    /// `slots` and this under λ steering.
    pub inflight: usize,
    /// Dead-client timeout: a connection with no complete frame for this
    /// long is closed.
    pub idle_ms: u64,
    /// Stop after serving this many requests (0 = run until stopped).
    pub max_requests: u64,
    /// Live metrics hub (request spans + stage histograms + λ-budget
    /// seqlock). `false` is the overhead gate's no-op baseline: the λ
    /// steering recorder stays on (admission depends on it) but no spans,
    /// stamps, or histograms are touched.
    pub metrics: bool,
    /// Bind a second listener here exposing `/metrics`, `/metrics.json`,
    /// and `/spans` (port 0 picks a free port; read it back from
    /// [`ServerHandle::metrics_addr`]). Implies `metrics`.
    pub metrics_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            n: 256,
            w: 64,
            slots: 8,
            window_us: 200,
            inflight: 64,
            idle_ms: 5000,
            max_requests: 0,
            metrics: true,
            metrics_addr: None,
        }
    }
}

/// Counters reported at shutdown.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Requests answered with a `Resp` frame.
    pub served: u64,
    /// Requests rejected with a `Busy` frame.
    pub busy: u64,
    /// Coalesced batches computed.
    pub batches: u64,
    /// Largest batch (requests).
    pub batch_max: u64,
    /// Mean batch size ×1000 (integer fixed-point, like the harness's
    /// speedup ratios).
    pub batch_mean_x1000: u64,
    /// Maximum combined-pass λ observed.
    pub lambda_max: f64,
    /// Connections accepted.
    pub conns: u64,
    /// Connections closed by the idle timer.
    pub reaped: u64,
}

struct Shared {
    stop: AtomicBool,
    inflight: AtomicUsize,
    limit: AtomicUsize,
    /// Busy rejects since the last batch (drained into
    /// [`Recorder::serve_batch`]).
    rejected: AtomicU64,
    served: AtomicU64,
    busy_total: AtomicU64,
    conns: AtomicU64,
    batches: AtomicU64,
    batch_req_total: AtomicU64,
    batch_max: AtomicU64,
    lambda_max_bits: AtomicU64,
    reaped: AtomicU64,
    writers: Mutex<HashMap<u16, mpsc::Sender<Vec<u64>>>>,
    /// Live observability hub; `None` runs the pipeline with zero
    /// metrics-side work (the overhead gate's baseline).
    metrics: Option<Arc<ServeMetrics>>,
}

impl Shared {
    fn max_u64(slot: &AtomicU64, v: u64) {
        let mut cur = slot.load(Ordering::Relaxed);
        while v > cur {
            match slot.compare_exchange(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    fn max_f64(slot: &AtomicU64, v: f64) {
        let mut cur = slot.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match slot.compare_exchange(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// Counter snapshot for the scrape renderers.
    fn counters(&self) -> ServeCounters {
        ServeCounters {
            served: self.served.load(Ordering::Relaxed),
            busy: self.busy_total.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::SeqCst) as u64,
            inflight_limit: self.limit.load(Ordering::SeqCst) as u64,
            conns: self.conns.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_max: self.batch_max.load(Ordering::Relaxed),
            reaped: self.reaped.load(Ordering::Relaxed),
        }
    }
}

/// The serve pipeline's scrape pages, rendered from the hub plus the
/// live counters. Every render is atomics-and-seqlock only — a slow or
/// hostile scraper cannot slow admission or compute.
struct Scrape(Arc<Shared>);

impl MetricsSource for Scrape {
    fn stopped(&self) -> bool {
        self.0.stop.load(Ordering::SeqCst)
    }

    fn render(&self, path: &str) -> Option<(&'static str, String)> {
        let hub = self.0.metrics.as_ref()?;
        match path {
            "/metrics" => Some((
                "text/plain; version=0.0.4",
                hub.render_prometheus(&self.0.counters()),
            )),
            "/metrics.json" => Some(("application/json", hub.render_json(&self.0.counters()))),
            "/spans" => Some(("application/x-ndjson", hub.render_spans())),
            _ => None,
        }
    }
}

/// One admitted request travelling from a reader to the batcher: the
/// validated frame words plus the originating connection and — when live
/// metrics are on — its request id and reader-side stage timestamps.
struct Admit {
    conn: u16,
    seq: u32,
    words: Vec<u64>,
    /// Monotone request id (0 when metrics are off).
    rid: u64,
    /// Frame fully read (ns since the hub epoch; 0 when metrics are off).
    recv_ns: u64,
    /// Request decoded and validated.
    decoded_ns: u64,
}

/// A running server. Stop it (and collect stats) with
/// [`ServerHandle::stop`]; `Drop` without `stop` aborts the threads
/// detached.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    compute: Option<JoinHandle<()>>,
    scrape: Option<JoinHandle<()>>,
}

/// A cloneable stop trigger (for stdin watchers and signal shims).
#[derive(Clone)]
pub struct Stopper(Arc<Shared>);

impl Stopper {
    /// Request shutdown; idempotent.
    pub fn stop(&self) {
        self.0.stop.store(true, Ordering::SeqCst);
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics listener's bound address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// A detached stop trigger.
    pub fn stopper(&self) -> Stopper {
        Stopper(Arc::clone(&self.shared))
    }

    /// True once shutdown has been requested (e.g. `max_requests` hit).
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Block until shutdown is requested (polling).
    pub fn wait(&self) {
        while !self.stopping() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Request shutdown, join every thread, and report the run's counters.
    pub fn stop(mut self) -> ServerStats {
        self.shared.stop.store(true, Ordering::SeqCst);
        for h in [
            self.accept.take(),
            self.batcher.take(),
            self.compute.take(),
            self.scrape.take(),
        ]
        .into_iter()
        .flatten()
        {
            let _ = h.join();
        }
        let s = &self.shared;
        let batches = s.batches.load(Ordering::Relaxed);
        let reqs = s.batch_req_total.load(Ordering::Relaxed);
        ServerStats {
            served: s.served.load(Ordering::Relaxed),
            busy: s.busy_total.load(Ordering::Relaxed),
            batches,
            batch_max: s.batch_max.load(Ordering::Relaxed),
            batch_mean_x1000: (reqs * 1000).checked_div(batches).unwrap_or(0),
            lambda_max: f64::from_bits(s.lambda_max_bits.load(Ordering::Relaxed)),
            conns: s.conns.load(Ordering::Relaxed),
            reaped: s.reaped.load(Ordering::Relaxed),
        }
    }
}

/// Bind and start serving. Returns once the listener is live; everything
/// else runs on background threads until [`ServerHandle::stop`].
pub fn spawn(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let hub =
        (cfg.metrics || cfg.metrics_addr.is_some()).then(|| Arc::new(ServeMetrics::default()));
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
        limit: AtomicUsize::new(cfg.inflight.max(1)),
        rejected: AtomicU64::new(0),
        served: AtomicU64::new(0),
        busy_total: AtomicU64::new(0),
        conns: AtomicU64::new(0),
        batches: AtomicU64::new(0),
        batch_req_total: AtomicU64::new(0),
        batch_max: AtomicU64::new(0),
        lambda_max_bits: AtomicU64::new(0),
        reaped: AtomicU64::new(0),
        writers: Mutex::new(HashMap::new()),
        metrics: hub,
    });
    let (metrics_addr, scrape) = match &cfg.metrics_addr {
        Some(maddr) => {
            let (bound, handle) =
                spawn_metrics_listener(maddr, Arc::new(Scrape(Arc::clone(&shared))))?;
            (Some(bound), Some(handle))
        }
        None => (None, None),
    };
    let (admit_tx, admit_rx) = mpsc::sync_channel::<Admit>(cfg.inflight.max(1));
    let (work_tx, work_rx) = mpsc::channel::<BatchBuf>();
    let (done_tx, done_rx) = mpsc::channel::<BatchBuf>();

    let accept = {
        let shared = Arc::clone(&shared);
        let cfg = cfg.clone();
        std::thread::spawn(move || accept_loop(listener, shared, cfg, admit_tx))
    };
    let batcher = {
        let shared = Arc::clone(&shared);
        let cfg = cfg.clone();
        std::thread::spawn(move || batcher_loop(admit_rx, work_tx, done_rx, shared, cfg))
    };
    let compute = {
        let shared = Arc::clone(&shared);
        let cfg = cfg.clone();
        std::thread::spawn(move || compute_loop(work_rx, done_tx, shared, cfg))
    };
    Ok(ServerHandle {
        addr,
        metrics_addr,
        shared,
        accept: Some(accept),
        batcher: Some(batcher),
        compute: Some(compute),
        scrape,
    })
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    cfg: ServerConfig,
    admit_tx: SyncSender<Admit>,
) {
    let mut readers = Vec::new();
    let mut next_conn: u16 = 1;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn = next_conn;
                next_conn = next_conn.wrapping_add(1).max(1);
                shared.conns.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                let (wtx, wrx) = mpsc::channel::<Vec<u64>>();
                shared.writers.lock().unwrap().insert(conn, wtx.clone());
                let wstream = match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let writer = std::thread::spawn(move || writer_loop(wstream, wrx));
                let rshared = Arc::clone(&shared);
                let rtx = admit_tx.clone();
                let rcfg = cfg.clone();
                readers.push(std::thread::spawn(move || {
                    reader_loop(stream, conn, rshared, rcfg, rtx, wtx);
                }));
                readers.push(writer);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    drop(admit_tx);
    for h in readers {
        let _ = h.join();
    }
}

fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<Vec<u64>>) {
    let mut bytes = Vec::new();
    for words in rx {
        if write_frame_buf(&mut stream, &words, &mut bytes).is_err() {
            break;
        }
    }
}

fn error_frame(conn: u16, seq: u32, code: u64) -> Vec<u64> {
    let mut buf = Vec::new();
    begin_frame(&mut buf, FrameKind::Error, conn, seq);
    buf.push(code);
    end_frame(&mut buf);
    buf
}

fn dbg_exit(conn: u16, why: &str) {
    if std::env::var_os("FT_SERVE_DEBUG").is_some() {
        eprintln!("[serve dbg] conn {conn}: {why}");
    }
}

fn reader_loop(
    mut stream: TcpStream,
    conn: u16,
    shared: Arc<Shared>,
    cfg: ServerConfig,
    admit_tx: SyncSender<Admit>,
    writer: mpsc::Sender<Vec<u64>>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let idle = Duration::from_millis(cfg.idle_ms.max(1));
    let hub = shared.metrics.clone();
    let mut last = Instant::now();
    let mut hello_done = false;
    let mut busy_buf = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            dbg_exit(conn, "stop flag");
            break;
        }
        let words = match read_frame(&mut stream) {
            Ok(None) => {
                if std::env::var_os("FT_SERVE_DEBUG").is_some() {
                    eprintln!("[serve dbg] conn {conn}: client EOF");
                }
                break;
            }
            Ok(Some(w)) => w,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Dead-client timeout: no complete frame within the idle
                // window closes the connection.
                if last.elapsed() >= idle {
                    shared.reaped.fetch_add(1, Ordering::Relaxed);
                    if let Some(h) = &hub {
                        h.span(EventKind::ConnReap, conn as u32, 0, 0);
                    }
                    dbg_exit(conn, "idle timeout");
                    break;
                }
                continue;
            }
            Err(e) => {
                if std::env::var_os("FT_SERVE_DEBUG").is_some() {
                    eprintln!("[serve dbg] conn {conn}: read error {e}");
                }
                break;
            }
        };
        last = Instant::now();
        let recv_ns = hub.as_ref().map_or(0, |h| h.now_ns());
        let frame = match wire::decode(&words) {
            Ok(f) => f,
            Err(_) => {
                let _ = writer.send(error_frame(conn, 0, ERR_PROTO));
                break;
            }
        };
        match frame.kind {
            FrameKind::Hello => {
                let ok = match decode_hello(frame.payload) {
                    Ok((n, w)) => n == cfg.n && w == cfg.w,
                    Err(_) => false,
                };
                if !ok {
                    dbg_exit(conn, "hello shape mismatch");
                    let _ = writer.send(error_frame(conn, frame.seq, ERR_SHAPE));
                    break;
                }
                let mut ack = Vec::new();
                encode_hello_ack(
                    &mut ack,
                    conn,
                    &HelloAck {
                        n: cfg.n,
                        w: cfg.w,
                        slots: cfg.slots,
                        window_us: cfg.window_us as u32,
                        inflight: shared.limit.load(Ordering::SeqCst) as u32,
                        max_msgs: MAX_REQ_MSGS as u32,
                    },
                );
                if writer.send(ack).is_err() {
                    dbg_exit(conn, "ack send failed");
                    break;
                }
                hello_done = true;
            }
            FrameKind::Req if hello_done => {
                // Validate the payload here so malformed requests answer
                // with an Error frame instead of poisoning a batch.
                if let Err(_e) = proto::decode_req(frame.payload) {
                    let _ = writer.send(error_frame(conn, frame.seq, ERR_REQUEST));
                    continue;
                }
                let req_id = frame.payload[0];
                let seq = frame.seq;
                // Decode finished and the request is validated: assign its
                // span id and stamp the decode-stage boundary.
                let (rid, decoded_ns) = match &hub {
                    Some(h) => (h.next_rid(), h.now_ns()),
                    None => (0, 0),
                };
                let cur = shared.inflight.fetch_add(1, Ordering::SeqCst);
                let limit = shared.limit.load(Ordering::SeqCst);
                let over_limit = cur >= limit;
                let verdict = if over_limit {
                    Err(())
                } else {
                    admit_tx
                        .try_send(Admit {
                            conn,
                            seq,
                            words,
                            rid,
                            recv_ns,
                            decoded_ns,
                        })
                        .map_err(|e| match e {
                            TrySendError::Full(_) => (),
                            TrySendError::Disconnected(_) => (),
                        })
                };
                if verdict.is_err() {
                    shared.inflight.fetch_sub(1, Ordering::SeqCst);
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    shared.busy_total.fetch_add(1, Ordering::Relaxed);
                    if let Some(h) = &hub {
                        h.span(
                            EventKind::ReqBusy,
                            rid.min(u32::MAX as u64) as u32,
                            0,
                            (cur + 1) as u32,
                        );
                    }
                    encode_busy(
                        &mut busy_buf,
                        conn,
                        seq,
                        req_id,
                        (cur + 1) as u32,
                        limit as u32,
                    );
                    if writer.send(busy_buf.clone()).is_err() {
                        dbg_exit(conn, "busy send failed");
                        break;
                    }
                }
            }
            _ => {
                if std::env::var_os("FT_SERVE_DEBUG").is_some() {
                    eprintln!("[serve dbg] conn {conn}: unexpected kind {:?}", frame.kind);
                }
                let _ = writer.send(error_frame(conn, frame.seq, ERR_PROTO));
                break;
            }
        }
    }
    if std::env::var_os("FT_SERVE_DEBUG").is_some() {
        eprintln!("[serve dbg] conn {conn}: reader exit");
    }
    shared.writers.lock().unwrap().remove(&conn);
}

fn batcher_loop(
    admit_rx: mpsc::Receiver<Admit>,
    work_tx: mpsc::Sender<BatchBuf>,
    done_rx: mpsc::Receiver<BatchBuf>,
    shared: Arc<Shared>,
    cfg: ServerConfig,
) {
    let window = Duration::from_micros(cfg.window_us);
    let mut spare = BatchBuf::new();
    let mut in_compute = false;
    let mut carry: Option<Admit> = None;
    let mut batch_seq: u64 = 0;
    'serve: loop {
        // Open a batch: the carried-over request, or the next arrival.
        // While compute is busy with batch k, wait only one window for
        // batch k+1 to start forming before draining k's responses: a
        // steady arrival stream keeps the pipeline fully overlapped, but
        // when arrivals stall (e.g. closed-loop clients all waiting on
        // k's responses) the finished batch must dispatch *now* — holding
        // it for the next arrival would deadlock the loop.
        let first = match carry.take() {
            Some(a) => a,
            None => loop {
                let wait = if in_compute {
                    window.max(Duration::from_micros(50))
                } else {
                    Duration::from_millis(50)
                };
                match admit_rx.recv_timeout(wait) {
                    Ok(a) => break a,
                    Err(RecvTimeoutError::Timeout) => {
                        if in_compute {
                            match done_rx.recv() {
                                Ok(mut done) => {
                                    dispatch(&mut done, &shared, &cfg);
                                    done.reset();
                                    spare = done;
                                    in_compute = false;
                                }
                                Err(_) => break 'serve,
                            }
                        }
                        if shared.stop.load(Ordering::SeqCst) {
                            break 'serve;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => break 'serve,
                }
            },
        };
        admit_into(&mut spare, first, &shared, &cfg);
        // Coalesce arrivals until the window closes or the batch fills.
        let deadline = Instant::now() + window;
        while carry.is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match admit_rx.recv_timeout(left) {
                Ok(a) => {
                    let engine = admit_engine(&a);
                    if engine.is_some_and(|e| !spare.has_room(e, cfg.slots)) {
                        carry = Some(a);
                    } else {
                        admit_into(&mut spare, a, &shared, &cfg);
                    }
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Ping-pong: ship the filled buffer to compute, then (overlapping
        // compute of batch k) encode and dispatch batch k−1.
        spare.rejected = shared.rejected.swap(0, Ordering::Relaxed);
        if let Some(h) = &shared.metrics {
            // The batch is closed: stamp the batch-wait boundary and flush
            // the admission + coalescing spans for every request in it
            // under one ring lock.
            spare.closed_ns = h.now_ns();
            let width = spare.len() as u32;
            let seq32 = batch_seq.min(u32::MAX as u64) as u32;
            h.span_many(spare.timings.iter().flat_map(|t| {
                let rid = t.rid.min(u32::MAX as u64) as u32;
                [
                    Event::new(EventKind::ReqAdmit, rid, t.engine as u32, t.msgs),
                    Event::new(EventKind::ReqBatch, rid, width, seq32),
                ]
            }));
        }
        batch_seq += 1;
        let filled = std::mem::take(&mut spare);
        if work_tx.send(filled).is_err() {
            break;
        }
        if in_compute {
            match done_rx.recv() {
                Ok(mut done) => {
                    dispatch(&mut done, &shared, &cfg);
                    done.reset();
                    spare = done;
                }
                Err(_) => break,
            }
        } else {
            in_compute = true;
        }
    }
    // Drain the pipeline so every admitted request is answered.
    drop(work_tx);
    if in_compute {
        if let Ok(mut done) = done_rx.recv() {
            dispatch(&mut done, &shared, &cfg);
        }
    }
    if let Ok(mut done) = done_rx.recv() {
        dispatch(&mut done, &shared, &cfg);
    }
}

fn admit_engine(a: &Admit) -> Option<Engine> {
    wire::decode(&a.words)
        .ok()
        .and_then(|f| proto::decode_req(f.payload).ok())
        .map(|r| r.engine)
}

fn admit_into(b: &mut BatchBuf, a: Admit, shared: &Shared, cfg: &ServerConfig) {
    let Ok(frame) = wire::decode(&a.words) else {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        return;
    };
    let Ok(req) = proto::decode_req(frame.payload) else {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        return;
    };
    let (engine, msgs) = (req.engine, req.msgs.len() as u32);
    if b.admit(a.conn, a.seq, &req, cfg.n).is_err() {
        // Validation already ran reader-side; a failure here means the
        // connection raced shape changes — drop the request.
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    if let Some(h) = &shared.metrics {
        // Pushed iff the admit succeeded, so `timings[i]` always describes
        // the same request as `spans()[i]` after encoding. The ReqAdmit
        // span is emitted from this record at batch close — one ring lock
        // per batch instead of one per admission.
        b.timings.push(ReqTiming {
            rid: a.rid,
            engine,
            msgs,
            recv_ns: a.recv_ns,
            decoded_ns: a.decoded_ns,
            admitted_ns: h.now_ns(),
        });
    }
}

/// Encode the computed batch's responses and hand each frame to its
/// connection's writer, then (metrics on) settle the batch's stage
/// histograms and completion spans.
fn dispatch(b: &mut BatchBuf, shared: &Shared, cfg: &ServerConfig) {
    let enc_start = shared.metrics.as_ref().map_or(0, |h| h.now_ns());
    b.encode_responses();
    let enc_end = shared.metrics.as_ref().map_or(0, |h| h.now_ns());
    let writers = shared.writers.lock().unwrap();
    for span in b.spans() {
        if let Some(tx) = writers.get(&span.conn) {
            let _ = tx.send(b.frame(span).to_vec());
        }
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        shared.served.fetch_add(1, Ordering::Relaxed);
    }
    drop(writers);
    if let Some(h) = &shared.metrics {
        let width = b.len();
        if width > 0 {
            h.batch_occupancy.record(width as u64);
        }
        // Schedule and encode are batch-level stages; every request in
        // the batch shares them. The per-request stages come from its
        // `ReqTiming` stamps.
        let sched_ns = b.sched_end_ns.saturating_sub(b.sched_start_ns);
        let enc_ns = enc_end.saturating_sub(enc_start);
        let now = h.now_ns();
        debug_assert_eq!(b.timings.len(), b.spans().len());
        for t in &b.timings {
            let st = h.stage(t.engine);
            st.decode.record(t.decoded_ns.saturating_sub(t.recv_ns));
            st.admit_wait
                .record(t.admitted_ns.saturating_sub(t.decoded_ns));
            st.batch_wait
                .record(b.closed_ns.saturating_sub(t.admitted_ns));
            st.schedule.record(sched_ns);
            st.encode.record(enc_ns);
            h.record_wall(t.engine, width, now.saturating_sub(t.recv_ns));
        }
        h.span_many(b.timings.iter().map(|t| {
            Event::new(
                EventKind::ReqDone,
                t.rid.min(u32::MAX as u64) as u32,
                t.engine as u32,
                (now.saturating_sub(t.recv_ns) / 1_000).min(u32::MAX as u64) as u32,
            )
        }));
    }
    if cfg.max_requests > 0 && shared.served.load(Ordering::Relaxed) >= cfg.max_requests {
        shared.stop.store(true, Ordering::SeqCst);
    }
}

fn compute_loop(
    work_rx: mpsc::Receiver<BatchBuf>,
    done_tx: mpsc::Sender<BatchBuf>,
    shared: Arc<Shared>,
    cfg: ServerConfig,
) {
    let mut compute = ServeCompute::new(cfg.n, cfg.w, cfg.slots);
    let mut rec = MetricsRecorder::new();
    for mut b in work_rx {
        if let Some(h) = &shared.metrics {
            b.sched_start_ns = h.now_ns();
        }
        compute.run(&mut b, &mut rec);
        if let Some(h) = &shared.metrics {
            b.sched_end_ns = h.now_ns();
        }
        let lam = rec.lambda_max();
        Shared::max_f64(&shared.lambda_max_bits, lam);
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .batch_req_total
            .fetch_add(b.len() as u64, Ordering::Relaxed);
        Shared::max_u64(&shared.batch_max, b.len() as u64);
        // Contention-steered admission: high λ halves the in-flight limit
        // toward the batch width; calm batches grow it back toward the
        // configured ceiling.
        let cur = shared.limit.load(Ordering::SeqCst);
        let next = if lam > STEER_LAMBDA {
            (cur / 2).max(cfg.slots as usize)
        } else {
            (cur + 1 + cur / 8).min(cfg.inflight.max(1))
        };
        shared.limit.store(next, Ordering::SeqCst);
        if let Some(h) = &shared.metrics {
            // One seqlock write per batch: limit, λ, width, and batch
            // count always read back as one consistent generation.
            h.write_budget(LambdaBudget {
                limit: next as u64,
                lambda_max: f64::from_bits(shared.lambda_max_bits.load(Ordering::Relaxed)),
                last_batch: b.len() as u64,
                batches: shared.batches.load(Ordering::Relaxed),
            });
        }
        rec.reset();
        if done_tx.send(b).is_err() {
            break;
        }
    }
}
