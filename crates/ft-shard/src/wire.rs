//! The cross-shard wire format: length-prefixed packed-u64 frames.
//!
//! Every coordinator↔worker exchange is one *frame* — a flat `u64` vector
//! so the in-process transport moves it without serialization and the pipe
//! transport writes it as little-endian words:
//!
//! ```text
//! word 0   magic(16) | kind(8) | shard(16) | seq(24)
//! word 1   payload length in words
//! word 2…  payload
//! last     checksum over every preceding word
//! ```
//!
//! The sequence number makes requests idempotent (workers answer a replayed
//! request from cache), the checksum catches corrupted frames, and the
//! length prefix keeps a byte stream self-framing. Fault injection never
//! touches words 0–1 on purpose: a byte-stream transport (pipes) relies on
//! the length word for framing, so injected corruption models a payload
//! flipped in flight, not a desynchronized stream (see [`crate::fault`]).

/// Frame magic, in the top 16 bits of word 0.
pub const MAGIC: u64 = 0xF75D;

/// Protocol version spoken by this build. Version 2 added the overlapped
/// coordinator's frame kinds (`Load`/`Cycle`/`Claims2`/`Incoming2`) and the
/// compact two-word claim encodings; version 1 peers (the original
/// lock-step `Batch`/`Claims`/`Incoming` cycle) are still decoded — the
/// worker keeps the v1 request arms, and [`crate::proto::InitMsg`] carries
/// the version in previously-zero header bits so v1 frames decode as
/// version 0/1 instead of failing.
pub const PROTO_VERSION: u32 = 2;

/// Hard cap on payload length: a frame announcing more than this is
/// rejected as a protocol error instead of a giant allocation or a hang.
pub const MAX_PAYLOAD_WORDS: u64 = 1 << 24;

/// Frame header + checksum overhead, in words.
pub const OVERHEAD_WORDS: usize = 3;

/// Frame kinds. Requests flow coordinator → worker, responses back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Coordinator → worker: tree shape, sim config, shard index, fault
    /// plan. First frame on every link (seq 0).
    Init = 1,
    /// Worker → coordinator: INIT applied.
    InitAck = 2,
    /// Coordinator → worker: this cycle's pending messages owned by the
    /// shard, plus the per-cycle arbitration seed.
    Batch = 3,
    /// Worker → coordinator: surviving root-crossers after the up passes.
    Claims = 4,
    /// Coordinator → worker: top-arbitration survivors destined for this
    /// shard's subtree.
    Incoming = 5,
    /// Worker → coordinator: delivered ids and the shard's cycle ticks.
    Outcomes = 6,
    /// Coordinator → worker: drain and exit.
    Shutdown = 7,
    /// Worker → coordinator: exiting.
    ShutdownAck = 8,
    /// Worker → coordinator: unrecoverable worker-side failure (code in
    /// payload word 0, see [`crate::ShardError::Worker`]).
    Error = 9,
    /// Coordinator → worker (v2): the shard's full pending-message set,
    /// shipped once per run. The worker retains and compacts it locally, so
    /// per-cycle traffic no longer carries message bodies.
    Load = 10,
    /// Worker → coordinator (v2): LOAD applied.
    LoadAck = 11,
    /// Coordinator → worker (v2): start a delivery cycle — the per-cycle
    /// arbitration seed plus a verdict bitmap over the claims this shard
    /// exported last cycle (bit set = delivered remotely, drop it from
    /// pending; clear = retry it).
    Cycle = 12,
    /// Worker → coordinator (v2): surviving root-crossers, two words per
    /// claim (`id|wire`, descriptor) instead of v1 `Claims`' three.
    Claims2 = 13,
    /// Coordinator → worker (v2): top-arbitration winners descending into
    /// this shard, in the same two-word encoding.
    Incoming2 = 14,
    /// Client → server (serve): handshake — protocol version and the tree
    /// shape the client expects. First frame on every connection.
    Hello = 15,
    /// Server → client (serve): handshake accepted; echoes the version and
    /// shape, and announces the server's batching/admission limits.
    HelloAck = 16,
    /// Client → server (serve): one routing request — engine selector,
    /// seed, and the message set to schedule.
    Req = 17,
    /// Server → client (serve): the scheduled response for one request,
    /// byte-identical to what a solo run would produce.
    Resp = 18,
    /// Server → client (serve): request rejected by admission control —
    /// the in-flight queue is full. Payload carries the request id and the
    /// queue occupancy/limit so clients can back off.
    Busy = 19,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Init,
            2 => FrameKind::InitAck,
            3 => FrameKind::Batch,
            4 => FrameKind::Claims,
            5 => FrameKind::Incoming,
            6 => FrameKind::Outcomes,
            7 => FrameKind::Shutdown,
            8 => FrameKind::ShutdownAck,
            9 => FrameKind::Error,
            10 => FrameKind::Load,
            11 => FrameKind::LoadAck,
            12 => FrameKind::Cycle,
            13 => FrameKind::Claims2,
            14 => FrameKind::Incoming2,
            15 => FrameKind::Hello,
            16 => FrameKind::HelloAck,
            17 => FrameKind::Req,
            18 => FrameKind::Resp,
            19 => FrameKind::Busy,
            _ => return None,
        })
    }
}

/// Why a received word vector is not a valid frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer than the header + checksum words.
    TooShort,
    /// Word 0 does not carry the magic.
    BadMagic,
    /// Unknown frame kind.
    BadKind(u8),
    /// Announced payload length exceeds [`MAX_PAYLOAD_WORDS`].
    Oversize(u64),
    /// Announced payload length disagrees with the vector length.
    LengthMismatch,
    /// Checksum failed — the frame was corrupted in flight.
    BadChecksum,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooShort => write!(f, "frame too short"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversize(n) => write!(f, "oversize frame ({n} payload words)"),
            WireError::LengthMismatch => write!(f, "frame length mismatch"),
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

/// A decoded view into a frame's words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frame<'a> {
    pub kind: FrameKind,
    pub shard: u16,
    pub seq: u32,
    pub payload: &'a [u64],
}

/// FNV-1a over the words, splitmix-finalized: cheap, and plenty to catch
/// injected bit flips (this is an integrity check, not cryptography).
pub fn checksum(words: &[u64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &w in words {
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01B3);
    }
    ft_core::rng::splitmix64(h)
}

/// Encode one frame. `seq` is truncated to 24 bits (the coordinator issues
/// seqs sequentially; 16M requests outlive any simulated run).
pub fn encode(kind: FrameKind, shard: u16, seq: u32, payload: &[u64]) -> Vec<u64> {
    let mut words = Vec::with_capacity(payload.len() + OVERHEAD_WORDS);
    begin_frame(&mut words, kind, shard, seq);
    words.extend_from_slice(payload);
    end_frame(&mut words);
    words
}

/// Start composing a frame directly into `buf` (cleared first): header
/// words only. Push the payload, then seal with [`end_frame`]. Splitting
/// the composition this way lets hot paths build payloads in place in a
/// grow-only buffer — no intermediate payload vector, no per-frame
/// allocation once the buffer has reached steady-state size.
pub fn begin_frame(buf: &mut Vec<u64>, kind: FrameKind, shard: u16, seq: u32) {
    buf.clear();
    buf.push(MAGIC << 48 | (kind as u64) << 40 | (shard as u64) << 24 | (seq as u64 & 0x00FF_FFFF));
    buf.push(0); // payload length, patched by `end_frame`
}

/// Seal a frame begun with [`begin_frame`]: patch the length word and
/// append the checksum.
pub fn end_frame(buf: &mut Vec<u64>) {
    debug_assert!(buf.len() >= 2, "end_frame without begin_frame");
    let payload_len = (buf.len() - 2) as u64;
    debug_assert!(payload_len < MAX_PAYLOAD_WORDS);
    buf[1] = payload_len;
    buf.push(checksum(buf));
}

/// Validate and decode a frame.
pub fn decode(words: &[u64]) -> Result<Frame<'_>, WireError> {
    if words.len() < OVERHEAD_WORDS {
        return Err(WireError::TooShort);
    }
    let w0 = words[0];
    if w0 >> 48 != MAGIC {
        return Err(WireError::BadMagic);
    }
    let kind = FrameKind::from_u8((w0 >> 40) as u8).ok_or(WireError::BadKind((w0 >> 40) as u8))?;
    let len = words[1];
    if len >= MAX_PAYLOAD_WORDS {
        return Err(WireError::Oversize(len));
    }
    if words.len() != len as usize + OVERHEAD_WORDS {
        return Err(WireError::LengthMismatch);
    }
    let body = &words[..words.len() - 1];
    if checksum(body) != words[words.len() - 1] {
        return Err(WireError::BadChecksum);
    }
    Ok(Frame {
        kind,
        shard: (w0 >> 24) as u16,
        seq: w0 as u32 & 0x00FF_FFFF,
        payload: &words[2..words.len() - 1],
    })
}

/// Write a frame as little-endian bytes (the pipe transport's encoding).
pub fn write_frame<W: std::io::Write>(w: &mut W, words: &[u64]) -> std::io::Result<()> {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    write_frame_buf(w, words, &mut bytes)
}

/// [`write_frame`] through a caller-owned scratch buffer, so a transport
/// thread streaming many frames byte-encodes them without per-frame
/// allocation.
pub fn write_frame_buf<W: std::io::Write>(
    w: &mut W,
    words: &[u64],
    bytes: &mut Vec<u8>,
) -> std::io::Result<()> {
    bytes.clear();
    for &word in words {
        bytes.extend_from_slice(&word.to_le_bytes());
    }
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame from a little-endian byte stream. Returns `Ok(None)` on a
/// clean EOF at a frame boundary (the peer closed the stream); propagates a
/// protocol-shaped [`std::io::Error`] on a torn header, bad magic, or an
/// oversize length word — a byte stream that desynchronizes cannot be
/// re-framed, so the reader gives up rather than scanning.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Option<Vec<u64>>> {
    use std::io::{Error, ErrorKind};
    let mut head = [0u8; 16];
    match r.read(&mut head[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut head[1..])?,
    }
    let w0 = u64::from_le_bytes(head[..8].try_into().unwrap());
    let len = u64::from_le_bytes(head[8..].try_into().unwrap());
    if w0 >> 48 != MAGIC {
        return Err(Error::new(ErrorKind::InvalidData, "bad frame magic"));
    }
    if len >= MAX_PAYLOAD_WORDS {
        return Err(Error::new(ErrorKind::InvalidData, "oversize frame"));
    }
    let mut words = Vec::with_capacity(len as usize + OVERHEAD_WORDS);
    words.push(w0);
    words.push(len);
    let mut rest = vec![0u8; (len as usize + 1) * 8];
    r.read_exact(&mut rest)?;
    for c in rest.chunks_exact(8) {
        words.push(u64::from_le_bytes(c.try_into().unwrap()));
    }
    Ok(Some(words))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let payload = [7u64, 0, u64::MAX, 42];
        let words = encode(FrameKind::Claims, 3, 0x00AB_CDEF, &payload);
        let f = decode(&words).unwrap();
        assert_eq!(f.kind, FrameKind::Claims);
        assert_eq!(f.shard, 3);
        assert_eq!(f.seq, 0x00AB_CDEF);
        assert_eq!(f.payload, &payload);
    }

    #[test]
    fn in_place_composition_matches_encode() {
        let payload = [3u64, 1, 4, 1, 5];
        let want = encode(FrameKind::Incoming2, 2, 9, &payload);
        let mut buf = vec![0xDEAD; 7]; // stale contents must not leak in
        begin_frame(&mut buf, FrameKind::Incoming2, 2, 9);
        buf.extend_from_slice(&payload);
        end_frame(&mut buf);
        assert_eq!(buf, want);
    }

    #[test]
    fn corruption_detected_everywhere() {
        let words = encode(FrameKind::Batch, 0, 5, &[1, 2, 3]);
        for i in 2..words.len() {
            for bit in [0, 17, 63] {
                let mut bad = words.clone();
                bad[i] ^= 1 << bit;
                assert!(decode(&bad).is_err(), "flip word {i} bit {bit} accepted");
            }
        }
    }

    #[test]
    fn header_validation() {
        assert_eq!(decode(&[1, 2]), Err(WireError::TooShort));
        assert_eq!(decode(&[0, 0, 0]), Err(WireError::BadMagic));
        let mut f = encode(FrameKind::Init, 0, 0, &[]);
        f[0] = MAGIC << 48 | 200u64 << 40;
        assert_eq!(decode(&f), Err(WireError::BadKind(200)));
        let mut f = encode(FrameKind::Init, 0, 0, &[9]);
        f[1] = MAX_PAYLOAD_WORDS;
        assert_eq!(decode(&f), Err(WireError::Oversize(MAX_PAYLOAD_WORDS)));
        let f = encode(FrameKind::Init, 0, 0, &[9]);
        assert_eq!(decode(&f[..3]), Err(WireError::LengthMismatch));
    }

    #[test]
    fn byte_stream_roundtrip() {
        let a = encode(FrameKind::Batch, 1, 1, &[10, 20]);
        let b = encode(FrameKind::Shutdown, 1, 2, &[]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b);
        assert!(read_frame(&mut r).unwrap().is_none());
    }
}
