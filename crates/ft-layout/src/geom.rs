//! Elementary 3-D geometry for the VLSI model: axis-aligned cuboids.

/// An axis-aligned cuboid `[min, max)` in 3-space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cuboid {
    /// Minimum corner.
    pub min: [f64; 3],
    /// Maximum corner.
    pub max: [f64; 3],
}

impl Cuboid {
    /// A cube of side `s` with its minimum corner at the origin.
    pub fn cube(s: f64) -> Self {
        assert!(s > 0.0);
        Cuboid {
            min: [0.0; 3],
            max: [s; 3],
        }
    }

    /// A box with the given side lengths, minimum corner at the origin.
    pub fn with_sides(sides: [f64; 3]) -> Self {
        assert!(sides.iter().all(|&s| s > 0.0));
        Cuboid {
            min: [0.0; 3],
            max: sides,
        }
    }

    /// Side length along `axis`.
    #[inline]
    pub fn side(&self, axis: usize) -> f64 {
        self.max[axis] - self.min[axis]
    }

    /// Volume.
    pub fn volume(&self) -> f64 {
        self.side(0) * self.side(1) * self.side(2)
    }

    /// Total surface area of the boundary.
    pub fn surface_area(&self) -> f64 {
        let (a, b, c) = (self.side(0), self.side(1), self.side(2));
        2.0 * (a * b + b * c + c * a)
    }

    /// The axis with the longest side (ties broken toward lower index).
    pub fn longest_axis(&self) -> usize {
        let mut best = 0;
        for axis in 1..3 {
            if self.side(axis) > self.side(best) {
                best = axis;
            }
        }
        best
    }

    /// Split into two equal halves by a plane perpendicular to `axis`
    /// through the midpoint (the paper's cutting-plane step).
    pub fn halves(&self, axis: usize) -> (Cuboid, Cuboid) {
        let mid = 0.5 * (self.min[axis] + self.max[axis]);
        let mut lo = *self;
        let mut hi = *self;
        lo.max[axis] = mid;
        hi.min[axis] = mid;
        (lo, hi)
    }

    /// Does the cuboid contain the point (half-open on the max faces)?
    pub fn contains(&self, p: [f64; 3]) -> bool {
        (0..3).all(|a| p[a] >= self.min[a] && p[a] < self.max[a])
    }

    /// Midpoint coordinate along `axis`.
    pub fn mid(&self, axis: usize) -> f64 {
        0.5 * (self.min[axis] + self.max[axis])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_metrics() {
        let c = Cuboid::cube(2.0);
        assert_eq!(c.volume(), 8.0);
        assert_eq!(c.surface_area(), 24.0);
        assert_eq!(c.longest_axis(), 0);
    }

    #[test]
    fn halving_preserves_volume() {
        let c = Cuboid::with_sides([4.0, 2.0, 1.0]);
        let (a, b) = c.halves(0);
        assert_eq!(a.volume() + b.volume(), c.volume());
        assert_eq!(a.side(0), 2.0);
        assert_eq!(b.side(0), 2.0);
        assert_eq!(c.longest_axis(), 0);
    }

    #[test]
    fn three_cuts_halve_surface_area_by_four() {
        // Cutting x, then y, then z turns a cube of side s into a cube of
        // side s/2: surface area falls by exactly 4 — the geometric origin
        // of the ∛4 decomposition-tree ratio (Theorem 5).
        let c = Cuboid::cube(4.0);
        let (c1, _) = c.halves(0);
        let (c2, _) = c1.halves(1);
        let (c3, _) = c2.halves(2);
        assert!((c.surface_area() / c3.surface_area() - 4.0).abs() < 1e-12);
        assert!((c.volume() / c3.volume() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn containment_is_half_open() {
        let c = Cuboid::cube(1.0);
        assert!(c.contains([0.0, 0.0, 0.0]));
        assert!(c.contains([0.5, 0.9, 0.0]));
        assert!(!c.contains([1.0, 0.0, 0.0]));
        assert!(!c.contains([-0.1, 0.5, 0.5]));
    }

    #[test]
    fn longest_axis_of_slab() {
        let c = Cuboid::with_sides([1.0, 5.0, 3.0]);
        assert_eq!(c.longest_axis(), 1);
        assert_eq!(c.mid(1), 2.5);
    }
}
