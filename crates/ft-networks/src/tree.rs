//! The complete-binary-tree machine ("simple trees", §VI): processors at
//! every node of a complete binary tree, routing through lowest common
//! ancestors. Cheap (volume Θ(n)) but with a root bottleneck — the paper's
//! example of a non-universal network alongside 2-D arrays.

use crate::traits::FixedConnectionNetwork;
use ft_layout::Placement;

/// A tree machine on `n = 2^(d+1) − 1` processors, numbered in heap order
/// `1..=n` internally; the public processor ids are `0..n` (heap − 1).
#[derive(Clone, Copy, Debug)]
pub struct TreeMachine {
    levels: u32, // depth: root at 0 .. levels-1; n = 2^levels - 1
}

impl TreeMachine {
    /// A complete binary tree with the given number of levels (≥ 2).
    pub fn new(levels: u32) -> Self {
        assert!((2..=24).contains(&levels));
        TreeMachine { levels }
    }

    fn heap(u: usize) -> usize {
        u + 1
    }

    fn un_heap(h: usize) -> usize {
        h - 1
    }
}

impl FixedConnectionNetwork for TreeMachine {
    fn name(&self) -> String {
        format!("tree({} levels)", self.levels)
    }

    fn n(&self) -> usize {
        (1usize << self.levels) - 1
    }

    fn degree(&self) -> usize {
        3
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        let h = Self::heap(u);
        let n = self.n();
        let mut v = Vec::with_capacity(3);
        if h > 1 {
            v.push(Self::un_heap(h / 2));
        }
        if 2 * h <= n {
            v.push(Self::un_heap(2 * h));
        }
        if 2 * h < n {
            v.push(Self::un_heap(2 * h + 1));
        }
        v
    }

    fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut a = Self::heap(src);
        let mut b = Self::heap(dst);
        let mut up = vec![a];
        let mut down = vec![b];
        while a != b {
            if a > b {
                a /= 2;
                up.push(a);
            } else {
                b /= 2;
                down.push(b);
            }
        }
        down.pop(); // LCA already in `up`
        down.reverse();
        up.extend(down);
        up.into_iter().map(Self::un_heap).collect()
    }

    fn placement(&self) -> Placement {
        // H-tree style locality in one dimension: place processors by
        // *in-order* traversal along a folded two-row line. Subtrees occupy
        // contiguous intervals, so any cutting plane severs only the O(lg n)
        // tree edges that leave an interval — the Θ(1)-bisection layout a
        // tree machine deserves (volume Θ(n)).
        let n = self.n();
        let mut order = Vec::with_capacity(n);
        in_order(1, n, &mut order);
        let mut rank = vec![0usize; n + 1];
        for (i, &h) in order.iter().enumerate() {
            rank[h] = i;
        }
        let half = n.div_ceil(2);
        let positions = (0..n)
            .map(|u| {
                let r = rank[Self::heap(u)];
                let (x, y) = if r < half {
                    (r, 0usize)
                } else {
                    (n - 1 - r, 1usize)
                };
                [x as f64 + 0.5, y as f64 + 0.5, 0.5]
            })
            .collect();
        Placement::new(
            positions,
            ft_layout::Cuboid::with_sides([half as f64, 2.0, 1.0]),
        )
    }
}

/// In-order traversal of the heap-ordered complete tree with `n` nodes.
fn in_order(h: usize, n: usize, out: &mut Vec<usize>) {
    if h > n {
        return;
    }
    in_order(2 * h, n, out);
    out.push(h);
    in_order(2 * h + 1, n, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_all_routes;

    #[test]
    fn structure() {
        let t = TreeMachine::new(3);
        assert_eq!(t.n(), 7);
        assert_eq!(t.neighbors(0), vec![1, 2]); // root: two children
        assert_eq!(t.neighbors(3), vec![1]); // leaf: parent only
        assert_eq!(t.degree(), 3);
        check_all_routes(&t).unwrap();
    }

    #[test]
    fn routes_via_lca() {
        let t = TreeMachine::new(4);
        // Leaves 7 and 8 (heap 8, 9) share parent heap 4 → path length 2.
        assert_eq!(t.route(7, 8), vec![7, 3, 8]);
        // Far leaves route through the root (processor 0).
        let p = t.route(7, 14);
        assert!(p.contains(&0));
        assert_eq!(p.len() - 1, 6);
    }

    #[test]
    fn volume_linear() {
        let t = TreeMachine::new(6);
        assert!(t.volume() <= 2.0 * t.n() as f64);
    }
}
