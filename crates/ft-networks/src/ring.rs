//! A ring (cycle) of processors: the weakest interesting fixed-connection
//! network — diameter n/2, bisection 2. §VI's point that non-universal
//! networks "have no theoretical advantage over a sequential computer" shows
//! starkest here: a fat-tree of equal (linear) volume simulates the ring
//! with polylog slowdown, while the ring simulating anything global costs
//! Θ(n).

use crate::traits::FixedConnectionNetwork;
use ft_layout::Placement;

/// A bidirectional ring on `n ≥ 3` processors.
#[derive(Clone, Copy, Debug)]
pub struct Ring {
    n: usize,
}

impl Ring {
    /// A ring on `n ≥ 3` processors.
    pub fn new(n: usize) -> Self {
        assert!(n >= 3);
        Ring { n }
    }
}

impl FixedConnectionNetwork for Ring {
    fn name(&self) -> String {
        format!("ring({})", self.n)
    }

    fn n(&self) -> usize {
        self.n
    }

    fn degree(&self) -> usize {
        2
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        vec![(u + self.n - 1) % self.n, (u + 1) % self.n]
    }

    fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut path = vec![src];
        let fwd = (dst + self.n - src) % self.n;
        let mut cur = src;
        if fwd <= self.n / 2 {
            while cur != dst {
                cur = (cur + 1) % self.n;
                path.push(cur);
            }
        } else {
            while cur != dst {
                cur = (cur + self.n - 1) % self.n;
                path.push(cur);
            }
        }
        path
    }

    fn placement(&self) -> Placement {
        // A ring is one-dimensional hardware: fold it into two adjacent
        // rows of a (⌈n/2⌉)×2×1 box so *every* edge (wrap included) has
        // unit length. Volume Θ(n), and any cutting plane crosses at most
        // two ring edges — the O(1) bisection a ring deserves.
        let half = self.n.div_ceil(2);
        let mut positions = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let (x, y) = if i < half {
                (i, 0usize)
            } else {
                (self.n - 1 - i, 1usize)
            };
            positions.push([x as f64 + 0.5, y as f64 + 0.5, 0.5]);
        }
        Placement::new(
            positions,
            ft_layout::Cuboid::with_sides([half as f64, 2.0, 1.0]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_all_routes;

    #[test]
    fn structure_and_routes() {
        let r = Ring::new(10);
        assert_eq!(r.neighbors(0), vec![9, 1]);
        check_all_routes(&r).unwrap();
    }

    #[test]
    fn takes_the_short_way() {
        let r = Ring::new(10);
        assert_eq!(r.route(0, 9).len() - 1, 1);
        assert_eq!(r.route(0, 5).len() - 1, 5);
        for a in 0..10usize {
            for b in 0..10usize {
                assert!(r.route(a, b).len() - 1 <= 5);
            }
        }
    }

    #[test]
    fn volume_linear() {
        let r = Ring::new(27);
        // Folded two-row layout: ⌈27/2⌉ × 2 × 1.
        assert_eq!(r.volume(), 28.0);
        assert_eq!(r.placement().n(), 27);
    }
}
