//! Integration tests crossing ft-universal, ft-sim, and ft-workloads:
//! fixed-connection emulation end-to-end (with compiled switch settings)
//! and fault-injected delivery of real algorithm traffic.

use fat_tree::core::rng::SplitMix64;
use fat_tree::networks::{FixedConnectionNetwork, Hypercube, Mesh2D, Ring, Torus2D};
use fat_tree::prelude::*;
use fat_tree::sim::{compile_cycle, execute_compiled, FaultModel};
use fat_tree::universal::Emulation;
use fat_tree::workloads::{ascend_rounds, cannon_rounds};

#[test]
fn every_guest_edge_set_compiles_and_executes() {
    let guests: Vec<Box<dyn FixedConnectionNetwork>> = vec![
        Box::new(Ring::new(32)),
        Box::new(Mesh2D::new(6, 6)),
        Box::new(Torus2D::new(5)),
        Box::new(Hypercube::new(5)),
    ];
    for g in guests {
        let em = Emulation::build(g.as_ref(), 1.0);
        assert!(em.edge_load_factor <= 1.0 + 1e-9, "{}", g.name());
        let compiled = compile_cycle(&em.host, em.edge_set.as_slice())
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        let run = execute_compiled(&em.host, em.edge_set.as_slice(), &compiled, 32)
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        assert_eq!(run.delivered, em.edge_set.len());
    }
}

#[test]
fn cannon_rounds_run_on_torus_emulation() {
    // Cannon's traffic travels only torus edges, so the torus's host
    // delivers every round in one cycle.
    let torus = Torus2D::new(8);
    let em = Emulation::build(&torus, 1.0);
    for round in cannon_rounds(64) {
        assert!(
            em.round_is_one_cycle(&round),
            "a Cannon round overflowed the host"
        );
    }
}

#[test]
fn ascend_rounds_survive_wire_faults() {
    // Run hypercube-algorithm traffic on a faulty fat-tree: everything still
    // arrives, just in more cycles.
    let n = 64u32;
    let ft = FatTree::universal(n, 32);
    let cfg_ok = SimConfig::default();
    let cfg_bad = SimConfig {
        faults: FaultModel {
            dead_wire_fraction: 0.3,
            seed: 77,
        },
        ..Default::default()
    };
    let mut healthy = 0usize;
    let mut faulty = 0usize;
    for round in ascend_rounds(n) {
        healthy += run_to_completion(&ft, &round, &cfg_ok).cycles;
        let run = run_to_completion(&ft, &round, &cfg_bad);
        assert_eq!(run.delivered_per_cycle.iter().sum::<usize>(), round.len());
        faulty += run.cycles;
    }
    assert!(faulty >= healthy);
    assert!(
        faulty <= 8 * healthy,
        "fault slowdown too steep: {faulty} vs {healthy}"
    );
}

#[test]
fn schedules_remain_valid_under_translation() {
    // Schedule guest traffic (in guest coordinates) on the host via the
    // identification, then validate on the host tree.
    let mesh = Mesh2D::new(8, 8);
    let em = Emulation::build(&mesh, 1.0);
    let mut rng = SplitMix64::seed_from_u64(4);
    let traffic = fat_tree::workloads::random_permutation(64, &mut rng);
    let translated = em.identification.translate(&traffic);
    let (schedule, _) = schedule_theorem1(&em.host, &translated);
    schedule.validate(&em.host, &translated).unwrap();
}
