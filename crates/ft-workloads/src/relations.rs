//! Random k-relations: each processor sends exactly `k` messages to
//! uniformly random destinations (so expected receive load is also `k`).
//! Sweeping `k` sweeps the load factor λ(M) for the Theorem 1 experiments.

use ft_core::rng::SplitMix64;
use ft_core::{Message, MessageSet};

/// A random k-relation on `n` processors.
pub fn random_k_relation(n: u32, k: u32, rng: &mut SplitMix64) -> MessageSet {
    let mut m = MessageSet::with_capacity((n * k) as usize);
    for i in 0..n {
        for _ in 0..k {
            m.push(Message::new(i, rng.gen_range(0..n)));
        }
    }
    m
}

/// A *balanced* k-relation: each processor sends **and receives** exactly
/// `k` messages (the union of `k` independent random permutations).
pub fn balanced_k_relation(n: u32, k: u32, rng: &mut SplitMix64) -> MessageSet {
    let mut m = MessageSet::with_capacity((n * k) as usize);
    for _ in 0..k {
        let perm = crate::perms::random_permutation(n, rng);
        m.extend_from(&perm);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let mut rng = SplitMix64::seed_from_u64(17);
        let m = random_k_relation(32, 4, &mut rng);
        assert_eq!(m.len(), 128);
        let b = balanced_k_relation(32, 4, &mut rng);
        assert_eq!(b.len(), 128);
    }

    #[test]
    fn balanced_has_exact_degrees() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let n = 16u32;
        let k = 3u32;
        let m = balanced_k_relation(n, k, &mut rng);
        let mut out = vec![0u32; n as usize];
        let mut inn = vec![0u32; n as usize];
        for msg in &m {
            out[msg.src.idx()] += 1;
            inn[msg.dst.idx()] += 1;
        }
        assert!(out.iter().all(|&c| c == k));
        assert!(inn.iter().all(|&c| c == k));
    }

    #[test]
    fn random_relation_has_exact_send_degree() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let n = 16u32;
        let m = random_k_relation(n, 2, &mut rng);
        let mut out = vec![0u32; n as usize];
        for msg in &m {
            out[msg.src.idx()] += 1;
        }
        assert!(out.iter().all(|&c| c == 2));
    }
}
