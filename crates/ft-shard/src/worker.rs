//! The shard worker: one subtree's half of the cycle protocol.
//!
//! A worker is a pure request/response state machine over frames — the same
//! [`WorkerCore`] runs as a thread behind channels
//! ([`crate::transport::InProcTransport`]), behind the shared-memory rings
//! ([`crate::transport::ShmTransport`]), or as a child process behind pipes
//! (`ftsim shard-worker`). It holds the shard's [`SimArena`] between the up
//! and down phases of a cycle, so suspended root-crossers keep their slots
//! while the coordinator arbitrates the top.
//!
//! Under protocol v2 the worker also *retains the shard's pending set*:
//! `Load` ships the messages once, and each `Cycle` request carries only
//! the arbitration seed plus a verdict bitmap over the previous cycle's
//! exported claims. The worker retires delivered messages itself — its own
//! deliveries when it settles a `Incoming2`, remote deliveries from the
//! bitmap — and FIFO-compacts pending in global-id order, reproducing the
//! coordinator's v1 partition exactly. The v1 arms (`Batch`/`Incoming`)
//! remain for version fallback.
//!
//! Requests are idempotent and mildly pipelined: the coordinator numbers
//! them sequentially per link and may keep up to two in flight, so the
//! worker caches its last [`REPLAY_CACHE`] logical replies. A replayed
//! sequence number re-sends the cached reply (through fresh fault rolls)
//! instead of re-running the phase; a request ahead of the expected
//! sequence by at most [`PIPELINE_WINDOW`] is dropped silently (its lost
//! predecessor will be retransmitted and order restored); anything further
//! ahead is an unrecoverable desync. Corrupted requests are dropped
//! silently — the coordinator's timeout owns recovery.

use crate::fault::{FaultPlan, FaultState, SendFate};
use crate::proto::{
    BatchMsg, ClaimsMsg, ClaimsV2, CycleView, InitMsg, LoadMsg, OutcomesMsg, ERR_BAD_PAYLOAD,
    ERR_NOT_LOADED, ERR_SEQ_DESYNC, ERR_UNINITIALIZED,
};
use crate::wire::{self, Frame, FrameKind};
use ft_core::{FatTree, Message};
use ft_sim::{Arbitration, ShardClaim, SimArena, SimConfig};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Instant;

/// Logical replies kept for replay. Two covers the coordinator's pipeline
/// depth (`Incoming2` of cycle c plus `Cycle` of c+1 in flight at once);
/// four leaves slack for retransmit/duplicate interleavings.
pub const REPLAY_CACHE: usize = 4;

/// How far ahead of the expected sequence a request may arrive and be
/// treated as reordering from a lost predecessor (ignored, recovered by
/// retransmission) rather than a desync error.
pub const PIPELINE_WINDOW: u32 = 2;

/// Post-INIT worker state: the shard's arena and its slice of the tree.
struct ShardState {
    ft: FatTree,
    sim: SimConfig,
    /// Config of the cycle in flight (per-cycle arbitration seed applied by
    /// the last `Batch`/`Cycle`); the following `Incoming`/`Incoming2` must
    /// use the same seed.
    cycle_cfg: SimConfig,
    boundary: u32,
    arena: SimArena,
    /// Root-crossers exported by the last up phase, in export order
    /// (ascending arbitration id) — the list the next `Cycle` bitmap
    /// indexes.
    claims: Vec<ShardClaim>,
    /// v2 retained pending set (`Load` received), FIFO in load order.
    loaded: bool,
    pending_msgs: Vec<Message>,
    /// Stable per-message keys: each pending message's *original* id (its
    /// position at `Load` time), parallel to `pending_msgs`.
    orig_ids: Vec<u32>,
    /// This cycle's arbitration ids (positions in the coordinator's
    /// compacted pending array, from the `Cycle` remap), parallel to
    /// `pending_msgs`. Ascending — a subsequence of the global order.
    cur_ids: Vec<u32>,
    /// Original ids of the last export list, parallel to `claims` — what
    /// the next `Cycle` verdict bitmap retires.
    exported_orig: Vec<u32>,
    /// `pend_flag[orig]` — original id currently in this shard's pending
    /// set. Sized by the coordinator-global message count from `Load`.
    pend_flag: Vec<bool>,
    /// Decode scratch for `Incoming2`.
    incoming: Vec<ShardClaim>,
    /// Remembered from INIT so `step` can (re)arm fault injection.
    plan: FaultPlan,
    shard_idx: u32,
}

/// The transport-agnostic worker state machine.
pub struct WorkerCore {
    state: Option<ShardState>,
    /// Sequence number of the last request processed, once any has been.
    last_seq: Option<u32>,
    /// Recent logical replies, keyed by request sequence (ring of
    /// [`REPLAY_CACHE`] grow-only buffers).
    cache: Vec<(u32, Vec<u64>)>,
    cache_next: usize,
    /// Sequence whose reply is the shutdown acknowledgement, if any —
    /// sending (or re-sending) it ends the worker loop.
    shutdown_seq: Option<u32>,
    /// Fault injection on this worker's outgoing frames.
    faults: Option<FaultState>,
    delay: Option<std::time::Duration>,
    /// Reply frame under composition (reused across steps).
    compose: Vec<u64>,
    /// Outgoing physical frames of the current step (reused, grow-only —
    /// `out_n` live entries).
    out: Vec<Vec<u64>>,
    out_n: usize,
}

impl WorkerCore {
    pub fn new() -> Self {
        WorkerCore {
            state: None,
            last_seq: None,
            cache: Vec::with_capacity(REPLAY_CACHE),
            cache_next: 0,
            shutdown_seq: None,
            faults: None,
            delay: None,
            compose: Vec::new(),
            out: Vec::new(),
            out_n: 0,
        }
    }

    /// Feed one received frame; returns the physical frames to send (after
    /// fault rolls — possibly none, possibly a duplicate) and whether the
    /// worker should exit. The returned slice borrows reusable buffers:
    /// send (or copy) before the next `step`.
    pub fn step(&mut self, words: &[u64]) -> (&[Vec<u64>], bool) {
        self.out_n = 0;
        let frame = match wire::decode(words) {
            Ok(f) => f,
            // Corrupted or malformed: say nothing, let the coordinator's
            // timeout drive a retransmit.
            Err(_) => return (&[], false),
        };
        let expected = self.last_seq.map_or(0, |s| s.wrapping_add(1));
        if let Some(i) = self.cache.iter().position(|(s, _)| *s == frame.seq) {
            // A replay of a request we already answered: the reply frame
            // must have been lost. Re-send it, with fresh fault rolls.
            if let Some(d) = self.delay {
                std::thread::sleep(d);
            }
            let cached = std::mem::take(&mut self.cache[i].1);
            self.roll_faults_into_out(&cached);
            self.cache[i].1 = cached;
            let quit = self.shutdown_seq == Some(frame.seq);
            return (&self.out[..self.out_n], quit);
        }
        if frame.seq != expected {
            if frame.seq.wrapping_sub(expected) as i32 <= 0 {
                // Behind and fallen out of the replay cache: a stale
                // duplicate, ignore.
                return (&[], false);
            }
            if frame.seq - expected <= PIPELINE_WINDOW {
                // Slightly ahead: a pipelined successor overtook a lost
                // request. Drop it — the coordinator retransmits both, in
                // order.
                return (&[], false);
            }
            // Far ahead: a whole exchange window was lost — unrecoverable.
            let shard = frame.shard;
            let seq = frame.seq;
            let mut compose = std::mem::take(&mut self.compose);
            wire::begin_frame(&mut compose, FrameKind::Error, shard, seq);
            compose.push(ERR_SEQ_DESYNC);
            wire::end_frame(&mut compose);
            self.finish_reply(seq, &compose);
            self.compose = compose;
            return (&self.out[..self.out_n], false);
        }
        let shard = frame.shard;
        let seq = frame.seq;
        let mut compose = std::mem::take(&mut self.compose);
        let quit = Self::handle(&mut self.state, &frame, shard, seq, &mut compose);
        if quit {
            self.shutdown_seq = Some(seq);
        }
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
        // INIT is the one request that (re)arms fault injection.
        if let FrameKind::Init = frame.kind {
            if let Some(st) = &self.state {
                let plan = st.plan;
                self.faults =
                    (!plan.is_none()).then(|| FaultState::new(plan, st.shard_idx as u64 * 2 + 1));
                self.delay = self.faults.as_ref().and_then(|f| f.delay());
            }
        }
        self.finish_reply(seq, &compose);
        self.compose = compose;
        (&self.out[..self.out_n], quit)
    }

    /// Record the composed frame as the logical answer to `seq` (entering
    /// the replay cache) and roll send faults into the out list.
    fn finish_reply(&mut self, seq: u32, frame: &[u64]) {
        self.last_seq = Some(seq);
        if self.cache.len() < REPLAY_CACHE {
            self.cache.push((seq, frame.to_vec()));
        } else {
            let slot = &mut self.cache[self.cache_next];
            slot.0 = seq;
            slot.1.clear();
            slot.1.extend_from_slice(frame);
        }
        self.cache_next = (self.cache_next + 1) % REPLAY_CACHE;
        self.roll_faults_into_out(frame);
    }

    fn roll_faults_into_out(&mut self, logical: &[u64]) {
        match &mut self.faults {
            None => {
                // Healthy link: straight copy into a reused out slot.
                Self::push_out(&mut self.out, &mut self.out_n, logical);
            }
            Some(fs) => {
                let mut copy = logical.to_vec();
                match fs.next(&mut copy) {
                    SendFate::Drop => {}
                    SendFate::Send => Self::push_out(&mut self.out, &mut self.out_n, &copy),
                    SendFate::SendTwice => {
                        Self::push_out(&mut self.out, &mut self.out_n, &copy);
                        Self::push_out(&mut self.out, &mut self.out_n, &copy);
                    }
                }
            }
        }
    }

    fn push_out(out: &mut Vec<Vec<u64>>, out_n: &mut usize, frame: &[u64]) {
        if *out_n == out.len() {
            out.push(Vec::new());
        }
        let slot = &mut out[*out_n];
        slot.clear();
        slot.extend_from_slice(frame);
        *out_n += 1;
    }

    /// Execute a fresh request, composing the complete reply frame into
    /// `compose`. Returns whether this was an acknowledged shutdown.
    fn handle(
        state: &mut Option<ShardState>,
        frame: &Frame<'_>,
        shard: u16,
        seq: u32,
        compose: &mut Vec<u64>,
    ) -> bool {
        let error = |compose: &mut Vec<u64>, code: u64| {
            wire::begin_frame(compose, FrameKind::Error, shard, seq);
            compose.push(code);
            wire::end_frame(compose);
            false
        };
        match frame.kind {
            FrameKind::Init => {
                let init = match InitMsg::decode(frame.payload) {
                    Ok(i) => i,
                    Err(_) => return error(compose, ERR_BAD_PAYLOAD),
                };
                let ft = init.tree();
                let arena = SimArena::new(&ft, &init.sim);
                *state = Some(ShardState {
                    cycle_cfg: init.sim,
                    sim: init.sim,
                    boundary: init.boundary,
                    arena,
                    ft,
                    claims: Vec::new(),
                    loaded: false,
                    pending_msgs: Vec::new(),
                    orig_ids: Vec::new(),
                    cur_ids: Vec::new(),
                    exported_orig: Vec::new(),
                    pend_flag: Vec::new(),
                    incoming: Vec::new(),
                    plan: init.plan,
                    shard_idx: init.shard,
                });
                wire::begin_frame(compose, FrameKind::InitAck, shard, seq);
                compose.push(wire::PROTO_VERSION as u64);
                wire::end_frame(compose);
                false
            }
            FrameKind::Load => {
                let st = match state {
                    Some(s) => s,
                    None => return error(compose, ERR_UNINITIALIZED),
                };
                let load = match LoadMsg::decode(frame.payload) {
                    Ok(l) => l,
                    Err(_) => return error(compose, ERR_BAD_PAYLOAD),
                };
                st.pend_flag.clear();
                st.pend_flag.resize(load.total as usize, false);
                for &id in &load.ids {
                    if (id as usize) < st.pend_flag.len() {
                        st.pend_flag[id as usize] = true;
                    }
                }
                // Before the first compaction, this cycle's ids ARE the
                // original ids.
                st.cur_ids.clear();
                st.cur_ids.extend_from_slice(&load.ids);
                st.orig_ids = load.ids;
                st.pending_msgs = load.msgs;
                st.claims.clear();
                st.exported_orig.clear();
                st.loaded = true;
                wire::begin_frame(compose, FrameKind::LoadAck, shard, seq);
                wire::end_frame(compose);
                false
            }
            FrameKind::Cycle => {
                let st = match state {
                    Some(s) => s,
                    None => return error(compose, ERR_UNINITIALIZED),
                };
                if !st.loaded {
                    return error(compose, ERR_NOT_LOADED);
                }
                let cv = match CycleView::parse(frame.payload) {
                    Ok(c) => c,
                    Err(_) => return error(compose, ERR_BAD_PAYLOAD),
                };
                if cv.verdicts as usize != st.exported_orig.len() {
                    return error(compose, ERR_BAD_PAYLOAD);
                }
                // Retire exports the rest of the machine delivered last
                // cycle; clear bits stay pending and retry.
                for i in 0..cv.verdicts as usize {
                    if cv.bit(i) {
                        st.pend_flag[st.exported_orig[i] as usize] = false;
                    }
                }
                // FIFO compaction — together with the local retirements
                // from the last settle, this reproduces the coordinator's
                // compaction restricted to this shard's messages, so the
                // remap aligns positionally.
                let mut w = 0usize;
                for i in 0..st.orig_ids.len() {
                    if st.pend_flag[st.orig_ids[i] as usize] {
                        st.pending_msgs[w] = st.pending_msgs[i];
                        st.orig_ids[w] = st.orig_ids[i];
                        w += 1;
                    }
                }
                st.pending_msgs.truncate(w);
                st.orig_ids.truncate(w);
                if cv.nids as usize != w {
                    return error(compose, ERR_BAD_PAYLOAD);
                }
                st.cur_ids.clear();
                for i in 0..w {
                    st.cur_ids.push(cv.id(i));
                }
                st.cycle_cfg = st.sim;
                if let Arbitration::Random(_) = st.sim.arbitration {
                    st.cycle_cfg.arbitration = Arbitration::Random(cv.arb_seed);
                }
                let t0 = Instant::now();
                st.claims.clear();
                st.arena.shard_up(
                    &st.ft,
                    &st.pending_msgs,
                    &st.cur_ids,
                    &st.cycle_cfg,
                    st.boundary,
                    &mut st.claims,
                );
                let ns = t0.elapsed().as_nanos() as u64;
                // Remember which originals we exported: claims and
                // `cur_ids` are both ascending, so one merge walk maps
                // arbitration id → pending position → original id.
                st.exported_orig.clear();
                let mut pos = 0usize;
                for c in &st.claims {
                    while st.cur_ids[pos] != c.id {
                        pos += 1;
                    }
                    st.exported_orig.push(st.orig_ids[pos]);
                }
                wire::begin_frame(compose, FrameKind::Claims2, shard, seq);
                ClaimsV2::encode_into(compose, ns, &st.claims);
                wire::end_frame(compose);
                false
            }
            FrameKind::Incoming2 => {
                let st = match state {
                    Some(s) => s,
                    None => return error(compose, ERR_UNINITIALIZED),
                };
                st.incoming.clear();
                if ClaimsV2::decode_into(frame.payload, &mut st.incoming).is_err() {
                    return error(compose, ERR_BAD_PAYLOAD);
                }
                let t0 = Instant::now();
                let stats = st
                    .arena
                    .shard_down(&st.ft, &st.cycle_cfg, st.boundary, &st.incoming);
                let ns = t0.elapsed().as_nanos() as u64;
                // Retire this shard's own deliveries. Delivered ids are
                // arbitration ids: the ones in `cur_ids` are this shard's
                // pending messages (locals that delivered here); the rest
                // are incoming claims, which belong to their *source*
                // shard's pending and are retired there via the verdict
                // bitmap.
                for &id in st.arena.delivered_ids() {
                    if let Ok(pos) = st.cur_ids.binary_search(&id) {
                        st.pend_flag[st.orig_ids[pos] as usize] = false;
                    }
                }
                wire::begin_frame(compose, FrameKind::Outcomes, shard, seq);
                OutcomesMsg::encode_into(compose, ns, stats.ticks, st.arena.delivered_ids());
                wire::end_frame(compose);
                false
            }
            FrameKind::Batch => {
                let st = match state {
                    Some(s) => s,
                    None => return error(compose, ERR_UNINITIALIZED),
                };
                let batch = match BatchMsg::decode(frame.payload) {
                    Ok(b) => b,
                    Err(_) => return error(compose, ERR_BAD_PAYLOAD),
                };
                st.cycle_cfg = st.sim;
                if let Arbitration::Random(_) = st.sim.arbitration {
                    st.cycle_cfg.arbitration = Arbitration::Random(batch.arb_seed);
                }
                let t0 = Instant::now();
                st.claims.clear();
                st.arena.shard_up(
                    &st.ft,
                    &batch.msgs,
                    &batch.ids,
                    &st.cycle_cfg,
                    st.boundary,
                    &mut st.claims,
                );
                let ns = t0.elapsed().as_nanos() as u64;
                wire::begin_frame(compose, FrameKind::Claims, shard, seq);
                compose.extend(ClaimsMsg::encode(ns, &st.claims));
                wire::end_frame(compose);
                false
            }
            FrameKind::Incoming => {
                let st = match state {
                    Some(s) => s,
                    None => return error(compose, ERR_UNINITIALIZED),
                };
                let incoming = match ClaimsMsg::decode(frame.payload) {
                    Ok(c) => c,
                    Err(_) => return error(compose, ERR_BAD_PAYLOAD),
                };
                let t0 = Instant::now();
                let stats =
                    st.arena
                        .shard_down(&st.ft, &st.cycle_cfg, st.boundary, &incoming.claims);
                let ns = t0.elapsed().as_nanos() as u64;
                wire::begin_frame(compose, FrameKind::Outcomes, shard, seq);
                OutcomesMsg::encode_into(compose, ns, stats.ticks, st.arena.delivered_ids());
                wire::end_frame(compose);
                false
            }
            FrameKind::Shutdown => {
                wire::begin_frame(compose, FrameKind::ShutdownAck, shard, seq);
                wire::end_frame(compose);
                true
            }
            // Response kinds arriving as requests: a confused peer.
            _ => error(compose, ERR_BAD_PAYLOAD),
        }
    }
}

impl Default for WorkerCore {
    fn default() -> Self {
        WorkerCore::new()
    }
}

/// Worker loop over in-process channels ([`crate::transport::InProcTransport`]).
/// Replies are tagged with the shard's link index so the coordinator can
/// multiplex every worker onto one receive queue. Exits when the request
/// channel closes, the response channel closes, or a shutdown is
/// acknowledged.
pub fn run_channel(shard: usize, rx: Receiver<Vec<u64>>, tx: Sender<(usize, Vec<u64>)>) {
    let mut core = WorkerCore::new();
    while let Ok(words) = rx.recv() {
        let (replies, quit) = core.step(&words);
        for f in replies {
            if tx.send((shard, f.clone())).is_err() {
                return;
            }
        }
        if quit {
            return;
        }
    }
}

/// Worker loop over a little-endian byte stream (`ftsim shard-worker` on
/// stdin/stdout). Returns on clean EOF or acknowledged shutdown; propagates
/// stream errors (torn frames, closed pipes).
pub fn run_pipe<R: std::io::Read, W: std::io::Write>(mut r: R, mut w: W) -> std::io::Result<()> {
    let mut core = WorkerCore::new();
    let mut bytes = Vec::new();
    while let Some(words) = wire::read_frame(&mut r)? {
        let (replies, quit) = core.step(&words);
        for f in replies {
            wire::write_frame_buf(&mut w, f, &mut bytes)?;
        }
        if quit {
            return Ok(());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use ft_core::{CapacityProfile, Message};

    fn init_frame(seq: u32) -> Vec<u64> {
        let init = InitMsg {
            n: 16,
            boundary: 1,
            shard: 0,
            proto: wire::PROTO_VERSION,
            sim: SimConfig::default(),
            plan: FaultPlan::none(),
            profile: CapacityProfile::FullDoubling,
        };
        wire::encode(FrameKind::Init, 0, seq, &init.encode())
    }

    #[test]
    fn v1_init_batch_incoming_shutdown_happy_path() {
        let mut core = WorkerCore::new();
        let (out, quit) = core.step(&init_frame(0));
        assert!(!quit);
        assert_eq!(wire::decode(&out[0]).unwrap().kind, FrameKind::InitAck);

        // Messages local to shard 0's subtree (leaves 0..8 of n=16), driven
        // through the v1 lock-step arms — the decode-fallback path.
        let msgs = [Message::new(0, 7), Message::new(3, 4)];
        let batch = BatchMsg::encode(0, 0, &[0, 1], &msgs);
        let req = wire::encode(FrameKind::Batch, 0, 1, &batch);
        let (out, _) = core.step(&req);
        let f = wire::decode(&out[0]).unwrap();
        assert_eq!(f.kind, FrameKind::Claims);
        let claims = ClaimsMsg::decode(f.payload).unwrap();
        assert!(
            claims.claims.is_empty(),
            "intra-shard traffic never crosses"
        );

        let inc = ClaimsMsg::encode(0, &[]);
        let req = wire::encode(FrameKind::Incoming, 0, 2, &inc);
        let (out, _) = core.step(&req);
        let f = wire::decode(&out[0]).unwrap();
        assert_eq!(f.kind, FrameKind::Outcomes);
        let outc = OutcomesMsg::decode(f.payload).unwrap();
        let mut got = outc.delivered;
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);

        let req = wire::encode(FrameKind::Shutdown, 0, 3, &[]);
        let (out, quit) = core.step(&req);
        assert!(quit);
        assert_eq!(wire::decode(&out[0]).unwrap().kind, FrameKind::ShutdownAck);
    }

    #[test]
    fn v2_load_cycle_retains_and_retires_pending() {
        let mut core = WorkerCore::new();
        core.step(&init_frame(0));

        // Load the shard's pending set once.
        let msgs = [Message::new(0, 7), Message::new(3, 4)];
        let mut p = Vec::new();
        LoadMsg::encode_into(&mut p, 2, &[0, 1], &msgs);
        let req = wire::encode(FrameKind::Load, 0, 1, &p);
        let (out, _) = core.step(&req);
        assert_eq!(wire::decode(&out[0]).unwrap().kind, FrameKind::LoadAck);

        // Cycle 0: empty verdict bitmap, both messages are intra-shard.
        let mut p = Vec::new();
        CycleView::encode_into(&mut p, 0, 0, 0, &[], &[0, 1]);
        let req = wire::encode(FrameKind::Cycle, 0, 2, &p);
        let (out, _) = core.step(&req);
        let f = wire::decode(&out[0]).unwrap();
        assert_eq!(f.kind, FrameKind::Claims2);
        let mut claims = Vec::new();
        ClaimsV2::decode_into(f.payload, &mut claims).unwrap();
        assert!(claims.is_empty(), "intra-shard traffic never crosses");

        // Settle: both deliver; the worker retires them from its pending.
        let mut p = Vec::new();
        ClaimsV2::encode_into(&mut p, 0, &[]);
        let req = wire::encode(FrameKind::Incoming2, 0, 3, &p);
        let (out, _) = core.step(&req);
        let f = wire::decode(&out[0]).unwrap();
        assert_eq!(f.kind, FrameKind::Outcomes);
        let v = crate::proto::OutcomesView::parse(f.payload).unwrap();
        assert_eq!(v.delivered.len(), 2);

        // Next cycle: nothing pending — the up phase exports nothing and
        // the pending set is empty without the coordinator re-sending it.
        let mut p = Vec::new();
        CycleView::encode_into(&mut p, 1, 0, 0, &[], &[]);
        let req = wire::encode(FrameKind::Cycle, 0, 4, &p);
        let (out, _) = core.step(&req);
        let f = wire::decode(&out[0]).unwrap();
        let mut claims = Vec::new();
        ClaimsV2::decode_into(f.payload, &mut claims).unwrap();
        assert!(claims.is_empty());
    }

    #[test]
    fn cycle_requires_load_and_validates_bitmap() {
        let mut core = WorkerCore::new();
        core.step(&init_frame(0));
        let mut p = Vec::new();
        CycleView::encode_into(&mut p, 0, 0, 0, &[], &[]);
        let req = wire::encode(FrameKind::Cycle, 0, 1, &p);
        let (out, _) = core.step(&req);
        let f = wire::decode(&out[0]).unwrap();
        assert_eq!(f.kind, FrameKind::Error);
        assert_eq!(f.payload, &[ERR_NOT_LOADED]);

        // Loaded, but the bitmap claims more exports than exist.
        let mut p = Vec::new();
        LoadMsg::encode_into(&mut p, 0, &[], &[]);
        let req = wire::encode(FrameKind::Load, 0, 2, &p);
        core.step(&req);
        let mut p = Vec::new();
        CycleView::encode_into(&mut p, 0, 0, 3, &[0], &[]);
        let req = wire::encode(FrameKind::Cycle, 0, 3, &p);
        let (out, _) = core.step(&req);
        let f = wire::decode(&out[0]).unwrap();
        assert_eq!(f.kind, FrameKind::Error);
        assert_eq!(f.payload, &[ERR_BAD_PAYLOAD]);
    }

    #[test]
    fn replayed_request_resends_cached_reply_without_reexecution() {
        let mut core = WorkerCore::new();
        core.step(&init_frame(0));
        let msgs = [Message::new(1, 2)];
        let batch = wire::encode(FrameKind::Batch, 0, 1, &BatchMsg::encode(0, 0, &[5], &msgs));
        let first = {
            let (out, _) = core.step(&batch);
            out.to_vec()
        };
        let (replay, _) = core.step(&batch);
        assert_eq!(first, replay, "replay must return the identical frame");
    }

    #[test]
    fn replay_cache_covers_pipelined_predecessors() {
        // Answer seqs 0..=2, then replay seq 1 (not the newest): the cache
        // must still hold it.
        let mut core = WorkerCore::new();
        core.step(&init_frame(0));
        let mut p = Vec::new();
        LoadMsg::encode_into(&mut p, 0, &[], &[]);
        let load = wire::encode(FrameKind::Load, 0, 1, &p);
        let load_reply = {
            let (out, _) = core.step(&load);
            out.to_vec()
        };
        let mut p = Vec::new();
        CycleView::encode_into(&mut p, 0, 0, 0, &[], &[]);
        let req = wire::encode(FrameKind::Cycle, 0, 2, &p);
        core.step(&req);
        let (replay, _) = core.step(&load);
        assert_eq!(load_reply, replay);
    }

    #[test]
    fn uninitialized_and_desynced_requests_error() {
        let mut core = WorkerCore::new();
        let batch = BatchMsg::encode(0, 0, &[], &[]);
        let req = wire::encode(FrameKind::Batch, 0, 0, &batch);
        let (out, _) = core.step(&req);
        let f = wire::decode(&out[0]).unwrap();
        assert_eq!(f.kind, FrameKind::Error);
        assert_eq!(f.payload, &[ERR_UNINITIALIZED]);

        let mut core = WorkerCore::new();
        core.step(&init_frame(0));
        // Seq jumps from 0 to 5 — beyond the pipeline window: a whole
        // exchange window was lost.
        let req = wire::encode(FrameKind::Shutdown, 0, 5, &[]);
        let (out, _) = core.step(&req);
        let f = wire::decode(&out[0]).unwrap();
        assert_eq!(f.kind, FrameKind::Error);
        assert_eq!(f.payload, &[ERR_SEQ_DESYNC]);
    }

    #[test]
    fn slightly_ahead_requests_are_dropped_for_retransmission() {
        let mut core = WorkerCore::new();
        core.step(&init_frame(0));
        // Expected seq is 1; seq 2 is within the pipeline window — the
        // worker stays silent and recovers when 1 is retransmitted.
        let req2 = wire::encode(FrameKind::Shutdown, 0, 2, &[]);
        let (out, quit) = core.step(&req2);
        assert!(out.is_empty() && !quit);
        let mut p = Vec::new();
        LoadMsg::encode_into(&mut p, 0, &[], &[]);
        let req1 = wire::encode(FrameKind::Load, 0, 1, &p);
        let (out, _) = core.step(&req1);
        assert_eq!(wire::decode(&out[0]).unwrap().kind, FrameKind::LoadAck);
        let (out, quit) = core.step(&req2);
        assert!(quit);
        assert_eq!(wire::decode(&out[0]).unwrap().kind, FrameKind::ShutdownAck);
    }

    #[test]
    fn corrupted_request_is_silently_ignored() {
        let mut core = WorkerCore::new();
        let mut f = init_frame(0);
        let last = f.len() - 1;
        f[last] ^= 1;
        let (out, quit) = core.step(&f);
        assert!(out.is_empty() && !quit);
        // The pristine retransmit still works.
        let (out, _) = core.step(&init_frame(0));
        assert_eq!(wire::decode(&out[0]).unwrap().kind, FrameKind::InitAck);
    }
}
