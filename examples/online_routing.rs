//! The on-line extension (§VI, ref [8]): randomized retry routing, no
//! precomputed schedule. Compares measured delivery cycles against the
//! off-line Theorem 1 schedule and the O(λ + lg n·lg lg n) on-line shape.
//!
//! ```sh
//! cargo run --release --example online_routing
//! ```

use fat_tree::core::rng::SplitMix64;
use fat_tree::prelude::*;
use fat_tree::sched::online::online_bound_shape;
use fat_tree::workloads;

fn main() {
    let n = 256u32;
    let ft = FatTree::universal(n, 64);
    let mut rng = SplitMix64::seed_from_u64(8);

    println!("on-line vs off-line delivery cycles, universal fat-tree n = {n}, w = 64\n");
    println!(
        "{:<26} {:>7} {:>9} {:>9} {:>14}",
        "workload", "λ(M)", "off-line", "on-line", "λ+lg n·lglg n"
    );

    for k in [1u32, 2, 4, 8, 16] {
        let msgs = workloads::balanced_k_relation(n, k, &mut rng);
        let lambda = load_factor(&ft, &msgs);
        let (offline, _) = schedule_theorem1(&ft, &msgs);
        let online = route_online(&ft, &msgs, &mut rng, OnlineConfig::default());
        println!(
            "{:<26} {:>7.2} {:>9} {:>9} {:>14.1}",
            format!("balanced {k}-relation"),
            lambda,
            offline.num_cycles(),
            online.cycles,
            online_bound_shape(&ft, lambda),
        );
    }

    let msgs = workloads::bit_complement(n);
    let lambda = load_factor(&ft, &msgs);
    let (offline, _) = schedule_theorem1(&ft, &msgs);
    let online = route_online(&ft, &msgs, &mut rng, OnlineConfig::default());
    println!(
        "{:<26} {:>7.2} {:>9} {:>9} {:>14.1}",
        "bit complement",
        lambda,
        offline.num_cycles(),
        online.cycles,
        online_bound_shape(&ft, lambda),
    );

    println!();
    println!("The on-line process needs no global knowledge — congested concentrators");
    println!("drop random losers, acknowledgments trigger retries — yet tracks the");
    println!("off-line schedule within the paper's O(λ + lg n·lg lg n) envelope.");
}
