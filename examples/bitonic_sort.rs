//! Bitonic sort executed over fat-tree delivery cycles.
//!
//! §VII: "A supercomputer should not be a mere supercalculator… Code is
//! portable in that it can be moved between an inexpensive computer and a
//! more expensive one." Here the *same* bitonic program runs on a cheap
//! fat-tree (w = n^(2/3)) and an expensive one (w = n): every
//! compare-exchange round is a dimension exchange delivered by the
//! bit-serial machine; only the cycle counts differ.
//!
//! ```sh
//! cargo run --release --example bitonic_sort
//! ```

use fat_tree::core::rng::SplitMix64;
use fat_tree::prelude::*;

/// One compare-exchange round of bitonic sort: stage `i`, substage `j`.
fn round_messages(n: u32, values: &[u64], j: u32) -> MessageSet {
    let _ = values;
    (0..n).map(|p| Message::new(p, p ^ (1 << j))).collect()
}

/// Apply the compare-exchange once the partner values arrived.
fn apply_round(values: &mut [u64], i: u32, j: u32) {
    let n = values.len() as u32;
    for p in 0..n {
        let q = p ^ (1 << j);
        if q < p {
            continue;
        }
        let ascending = (p >> (i + 1)) & 1 == 0;
        let (lo, hi) = (
            values[p as usize].min(values[q as usize]),
            values[p as usize].max(values[q as usize]),
        );
        if ascending {
            values[p as usize] = lo;
            values[q as usize] = hi;
        } else {
            values[p as usize] = hi;
            values[q as usize] = lo;
        }
    }
}

fn sort_on(ft: &FatTree, values: &mut [u64]) -> (usize, u64) {
    let n = values.len() as u32;
    let k = n.trailing_zeros();
    let cfg = SimConfig {
        payload_bits: 64,
        switch: SwitchKind::Ideal,
        ..Default::default()
    };
    let mut cycles = 0usize;
    let mut ticks = 0u64;
    for i in 0..k {
        for j in (0..=i).rev() {
            let msgs = round_messages(n, values, j);
            let run = run_to_completion(ft, &msgs, &cfg);
            cycles += run.cycles;
            ticks += run.total_ticks;
            apply_round(values, i, j);
        }
    }
    (cycles, ticks)
}

fn main() {
    let n = 256u32;
    let mut rng = SplitMix64::seed_from_u64(42);
    let input: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1_000_000)).collect();

    println!("bitonic sort of {n} keys, one per processor — same program, two machines:\n");
    println!(
        "{:<34} {:>8} {:>12} {:>10}",
        "machine", "rounds", "cycles", "ticks"
    );
    let rounds = (n.trailing_zeros() * (n.trailing_zeros() + 1) / 2) as usize;
    for (name, ft) in [
        (
            "cheap: universal w = n^(2/3) = 41",
            FatTree::universal(n, 41),
        ),
        (
            "rich:  universal w = n = 256",
            FatTree::universal(n, n as u64),
        ),
    ] {
        let mut values = input.clone();
        let (cycles, ticks) = sort_on(&ft, &mut values);
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "not sorted!");
        println!("{name:<34} {rounds:>8} {cycles:>12} {ticks:>10}");
    }

    println!();
    println!("Both machines sort correctly with identical code ({rounds} compare-exchange");
    println!("rounds = lg n·(lg n+1)/2). The cheap machine pays extra delivery cycles");
    println!("only on the few rounds that cross its thinner upper channels — exactly");
    println!("the graceful communication scaling §VII promises.");
}
