//! The (r, s, α) partial concentrator (§IV).
//!
//! A directed acyclic bipartite graph with `r` inputs and `s ≤ r` outputs
//! such that any `k ≤ α·s` inputs can be simultaneously connected to some
//! `k` outputs by vertex-disjoint paths. Pippenger's parameters: `s = 2r/3`,
//! `α = 3/4`, input degree ≤ 6, output degree ≤ 9, existence for
//! sufficiently large `r` by a probabilistic argument. We sample from the
//! same distribution and can *verify* the property empirically (or, for
//! small `r`, exhaustively via Hall's condition).

use crate::bipartite::BipartiteGraph;
use crate::matching::MatchingArena;
use crate::Concentrator;
use ft_core::rng::SplitMix64;
use ft_telemetry::{NoopRecorder, Recorder};

/// Pippenger's input degree bound.
pub const PIPPENGER_DIN: usize = 6;
/// Pippenger's output degree bound.
pub const PIPPENGER_DOUT: usize = 9;
/// Pippenger's concentration fraction α.
pub const PIPPENGER_ALPHA: f64 = 0.75;

/// A partial concentrator switch backed by a bounded-degree bipartite graph.
#[derive(Clone, Debug)]
pub struct PartialConcentrator {
    graph: BipartiteGraph,
    alpha: f64,
}

impl PartialConcentrator {
    /// Sample a Pippenger-style concentrator: `s = ⌈2r/3⌉` outputs,
    /// degrees (6, 9), α = 3/4.
    pub fn pippenger(r: usize, rng: &mut SplitMix64) -> Self {
        let s = r.div_ceil(3) * 2; // ⌈r/3⌉·2 ≥ 2r/3, keeps stub count feasible
        PartialConcentrator {
            graph: BipartiteGraph::random_regular(r, s, PIPPENGER_DIN, PIPPENGER_DOUT, rng),
            alpha: PIPPENGER_ALPHA,
        }
    }

    /// Wrap an explicit graph with a claimed concentration fraction α.
    pub fn from_graph(graph: BipartiteGraph, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha));
        PartialConcentrator { graph, alpha }
    }

    /// The claimed α: any `k ≤ α·s` inputs should concentrate.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Largest guaranteed-concentratable load `⌊α·s⌋`.
    #[inline]
    pub fn guaranteed(&self) -> usize {
        (self.alpha * self.graph.outputs() as f64).floor() as usize
    }

    /// Underlying bipartite graph.
    #[inline]
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// [`Concentrator::route`] with caller-supplied matching buffers: the
    /// hot path for simulators and cascades that concentrate repeatedly.
    pub fn route_with(&self, arena: &mut MatchingArena, active: &[usize]) -> Option<Vec<usize>> {
        self.route_traced(arena, active, 0, &mut NoopRecorder)
    }

    /// [`PartialConcentrator::route_with`] that reports the matching to a
    /// [`Recorder`] as cascade stage `stage` (ROADMAP: matching-size and
    /// augmenting-path counters for the concentrator stack).
    pub fn route_traced<R: Recorder>(
        &self,
        arena: &mut MatchingArena,
        active: &[usize],
        stage: u32,
        rec: &mut R,
    ) -> Option<Vec<usize>> {
        let size = arena.max_matching_with(&self.graph, active, stage, rec);
        if size == active.len() {
            Some(arena.matches().map(|o| o.expect("full matching")).collect())
        } else {
            None
        }
    }

    /// Empirically verify the concentration property on `trials` random
    /// active sets of the maximum guaranteed size. Returns the number of
    /// failures (0 means the sample looks like a true (r,s,α) concentrator).
    pub fn verify_random(&self, trials: usize, rng: &mut SplitMix64) -> usize {
        let k = self.guaranteed().min(self.graph.inputs());
        let mut failures = 0;
        let mut arena = MatchingArena::new();
        for _ in 0..trials {
            let active: Vec<usize> = rng.sample_indices(self.graph.inputs(), k);
            if arena.max_matching(&self.graph, &active) < k {
                failures += 1;
            }
        }
        failures
    }

    /// Exhaustively verify the property for all active sets of every size
    /// `k ≤ α·s` (exponential; use only for small `r`). Returns the first
    /// failing set if any.
    pub fn verify_exhaustive(&self) -> Option<Vec<usize>> {
        let r = self.graph.inputs();
        let kmax = self.guaranteed().min(r);
        // Enumerate subsets by bitmask.
        assert!(
            r <= 20,
            "exhaustive verification is exponential; r too large"
        );
        let mut arena = MatchingArena::new();
        for mask in 1u32..(1 << r) {
            let k = mask.count_ones() as usize;
            if k > kmax {
                continue;
            }
            let active: Vec<usize> = (0..r).filter(|&i| mask >> i & 1 == 1).collect();
            if arena.max_matching(&self.graph, &active) < k {
                return Some(active);
            }
        }
        None
    }
}

impl Concentrator for PartialConcentrator {
    fn inputs(&self) -> usize {
        self.graph.inputs()
    }

    fn outputs(&self) -> usize {
        self.graph.outputs()
    }

    fn route(&self, active: &[usize]) -> Option<Vec<usize>> {
        self.route_with(&mut MatchingArena::new(), active)
    }

    /// One switching element per edge (a pass-transistor / mux leg),
    /// O(r) total as the paper requires.
    fn components(&self) -> usize {
        self.graph.num_edges()
    }

    fn depth(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pippenger_dimensions() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let pc = PartialConcentrator::pippenger(48, &mut rng);
        assert_eq!(pc.inputs(), 48);
        assert_eq!(pc.outputs(), 32);
        assert_eq!(pc.guaranteed(), 24);
        assert_eq!(pc.depth(), 1);
        assert!(pc.components() <= 6 * 48);
    }

    #[test]
    fn pippenger_concentrates_with_high_probability() {
        // Failures should be rare for moderate r; tolerate a tiny rate.
        let mut rng = SplitMix64::seed_from_u64(5);
        let pc = PartialConcentrator::pippenger(96, &mut rng);
        let failures = pc.verify_random(200, &mut rng);
        assert!(
            failures <= 4,
            "too many concentration failures: {failures}/200"
        );
    }

    #[test]
    fn route_returns_injective_assignment() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let pc = PartialConcentrator::pippenger(60, &mut rng);
        let active: Vec<usize> = (0..pc.guaranteed()).collect();
        if let Some(out) = pc.route(&active) {
            let mut used = std::collections::HashSet::new();
            for o in out {
                assert!(o < pc.outputs());
                assert!(used.insert(o));
            }
        }
    }

    #[test]
    fn overload_fails_to_route() {
        // More active inputs than outputs can never concentrate.
        let mut rng = SplitMix64::seed_from_u64(9);
        let pc = PartialConcentrator::pippenger(30, &mut rng);
        let active: Vec<usize> = (0..pc.inputs()).collect();
        assert!(active.len() > pc.outputs());
        assert!(pc.route(&active).is_none());
    }

    #[test]
    fn exhaustive_small_crossbar_like_graph() {
        // Complete bipartite graph trivially concentrates everything ≤ s.
        let adj = (0..6).map(|_| (0..4).collect()).collect();
        let g = BipartiteGraph::from_adj(4, adj);
        let pc = PartialConcentrator::from_graph(g, 1.0);
        assert!(pc.verify_exhaustive().is_none());
    }

    #[test]
    fn exhaustive_detects_bad_graph() {
        // Two inputs forced onto one output: k = 2 ≤ α·s fails.
        let g = BipartiteGraph::from_adj(2, vec![vec![0], vec![0], vec![1]]);
        let pc = PartialConcentrator::from_graph(g, 1.0);
        let bad = pc.verify_exhaustive().expect("must find failing set");
        assert_eq!(bad, vec![0, 1]);
    }
}
