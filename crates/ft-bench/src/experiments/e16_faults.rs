//! E16 — §VII fault tolerance: dead wires shrink channel capacities;
//! concentrators and retries absorb them with graceful degradation.
//! (The paper poses fault tolerance as an open engineering problem; the
//! fat-tree's wire-bundle redundancy is its structural answer.)

use crate::tables::{f, Table};
use ft_core::FatTree;
use ft_sim::{run_to_completion, FaultModel, SimConfig};
use ft_workloads::{balanced_k_relation, random_permutation};

/// Run E16.
pub fn run() -> Vec<Table> {
    let mut rng = super::rng();
    let n = 256u32;
    let ft = FatTree::universal(n, 64);
    let mut t = Table::new(
        format!("E16 — wire faults vs delivery cycles (n = {n}, w = 64, ideal switches)"),
        &[
            "dead wires",
            "measured dead",
            "perm cycles",
            "perm slowdown",
            "4-relation cycles",
            "4-rel slowdown",
        ],
    );
    let perm = random_permutation(n, &mut rng);
    let krel = balanced_k_relation(n, 4, &mut rng);
    let healthy_perm = run_to_completion(&ft, &perm, &SimConfig::default()).cycles;
    let healthy_krel = run_to_completion(&ft, &krel, &SimConfig::default()).cycles;
    for &p in &[0.0f64, 0.05, 0.1, 0.2, 0.4] {
        let fm = FaultModel {
            dead_wire_fraction: p,
            seed: 0xE16,
        };
        let cfg = SimConfig {
            faults: fm,
            ..Default::default()
        };
        let cp = run_to_completion(&ft, &perm, &cfg).cycles;
        let ck = run_to_completion(&ft, &krel, &cfg).cycles;
        t.row(vec![
            format!("{:.0}%", 100.0 * p),
            format!("{:.1}%", 100.0 * fm.measured_fraction(&ft)),
            cp.to_string(),
            f(cp as f64 / healthy_perm as f64),
            ck.to_string(),
            f(ck as f64 / healthy_krel as f64),
        ]);
    }
    t.note("Killing wires shrinks capacities roughly proportionally, and delivery cycles");
    t.note("grow by about the same factor — no reconfiguration, no routing changes: the");
    t.note("concentrators simply use the surviving wires. §VII's robustness in action:");
    t.note("'one need not worry about the exact capacities of channels as long as the");
    t.note("capacities exhibit reasonable growth'.");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e16_graceful_degradation() {
        let t = super::run();
        for row in &t[0].rows {
            let s1: f64 = row[3].parse().unwrap();
            let s2: f64 = row[5].parse().unwrap();
            assert!(s1 <= 4.0 && s2 <= 4.0, "degradation not graceful: {row:?}");
        }
        // The 40%-dead row must actually be slower than the healthy row.
        let last: f64 = t[0].rows.last().unwrap()[5].parse().unwrap();
        assert!(last >= 1.0);
    }
}
