//! Hardware cost laws (§IV): Lemma 3 (node layout boxes), Theorem 4
//! (component count and volume of universal fat-trees), and the
//! volume-comparison laws used in §I and §VI (hypercube vs. fat-tree).
//!
//! Constants are explicit so experiments can report absolute numbers; the
//! paper's results are asymptotic, and EXPERIMENTS.md compares *shapes*
//! (exponents and crossovers), not constants.

use ft_core::{capacity::universal_cap, ids::ilog2_ceil, lg, FatTree};

/// Components per incident wire in a fat-tree node built from partial
/// concentrator cascades (§IV): each of the three concentrators in Fig. 3
/// costs ≤ 6·m_edges per stage with geometric stage shrinkage (factor 2/3),
/// i.e. ≤ 18 per input wire; plus a selector per wire.
pub const COMPONENTS_PER_WIRE: f64 = 19.0;

/// Lemma 3: a set of `m` components and external wires can be wired into a
/// box of side lengths `O(h·√m) × O(h·√m) × O(√m/h)` for any `1 ≤ h ≤ √m`.
/// Returns the side lengths with unit constants.
pub fn node_box(m: u64, h: f64) -> [f64; 3] {
    let sqrt_m = (m as f64).sqrt();
    assert!((1.0..=sqrt_m.max(1.0)).contains(&h), "need 1 ≤ h ≤ √m");
    [h * sqrt_m, h * sqrt_m, sqrt_m / h]
}

/// Volume of the Lemma 3 box: `h·m^(3/2)` — minimized at `h = 1`.
pub fn node_box_volume(m: u64, h: f64) -> f64 {
    let b = node_box(m, h);
    b[0] * b[1] * b[2]
}

/// Number of wires incident on a fat-tree node at level `k` (`0 ≤ k < lg n`):
/// two channels to the parent and four to the children.
pub fn node_incident_wires(ft: &FatTree, k: u32) -> u64 {
    assert!(k < ft.height());
    2 * ft.cap_at_level(k) + 4 * ft.cap_at_level(k + 1)
}

/// Total switching components of a fat-tree: `Σ_k 2^k · Θ(m_k)`.
/// Theorem 4 shows this is `O(n·lg(w³/n²))` for a universal fat-tree.
pub fn fat_tree_components(ft: &FatTree) -> f64 {
    (0..ft.height())
        .map(|k| (1u64 << k) as f64 * COMPONENTS_PER_WIRE * node_incident_wires(ft, k) as f64)
        .sum()
}

/// Theorem 4's component-count law for a universal fat-tree on `n`
/// processors with root capacity `w`: `Θ(n · lg(w³/n²))`, with the paper's
/// convention `lg x = max(1, ⌈log₂ x⌉)` keeping it `Θ(n)` when `w ≈ n^(2/3)`.
pub fn theorem4_component_law(n: u64, w: u64) -> f64 {
    let ratio = (w as f64).powi(3) / (n as f64).powi(2);
    n as f64 * ratio.max(2.0).log2().max(1.0)
}

/// Theorem 4's volume law for a universal fat-tree:
/// `v = Θ((w·lg(n/w))^(3/2))` (unit constant).
pub fn theorem4_volume_law(n: u64, w: u64) -> f64 {
    let lgnw = ((n as f64 / w as f64).max(2.0)).log2();
    (w as f64 * lgnw).powf(1.5)
}

/// A constructive volume estimate: sum over nodes of their Lemma 3 box
/// volumes (at `h = 1`) plus unit volume per processor. A lower-bound-ish
/// companion to [`theorem4_volume_law`]; experiments report both.
pub fn constructive_volume(ft: &FatTree) -> f64 {
    let nodes: f64 = (0..ft.height())
        .map(|k| {
            let m = node_incident_wires(ft, k) as f64 * COMPONENTS_PER_WIRE;
            (1u64 << k) as f64 * m.powf(1.5)
        })
        .sum();
    nodes + ft.n() as f64
}

/// Exact component count of a universal fat-tree computed from the capacity
/// law (used to check `theorem4_component_law` empirically without building
/// a `FatTree`).
pub fn universal_components_exact(n: u64, w: u64) -> f64 {
    let levels = ilog2_ceil(n);
    (0..levels)
        .map(|k| {
            let m = 2 * universal_cap(n, w, k) + 4 * universal_cap(n, w, k + 1);
            (1u64 << k) as f64 * COMPONENTS_PER_WIRE * m as f64
        })
        .sum()
}

/// Volume a hypercube-based network needs: its bisection is `n/2` wires, so
/// any 3-D layout has `v^(2/3) = Ω(n)`, i.e. `v = Ω(n^(3/2))` ("nearly order
/// n^(3/2) physical volume", §I). Unit constant.
pub fn hypercube_volume_law(n: u64) -> f64 {
    (n as f64).powf(1.5)
}

/// Volume of a planar (finite-element style) interconnection: planar graphs
/// have `O(√n)` bisection (Lipton–Tarjan), and "any planar interconnection
/// strategy requires only O(n) volume" (§I). Unit constant.
pub fn planar_volume_law(n: u64) -> f64 {
    n as f64
}

/// Root capacity of the universal fat-tree of volume `v` (§IV definition):
/// re-exported convenience over `ft_core::capacity::root_capacity_for_volume`.
pub fn root_capacity_of_volume(n: u64, v: f64) -> u64 {
    ft_core::capacity::root_capacity_for_volume(n, v)
}

/// The slowdown bound of Theorem 10 for simulating volume-`v` networks on
/// `n` processors: `O(lg³ n)` in the equal-volume setting; the factor
/// decomposes as `lg(n/v^(2/3))` (capacity) × `lg n` (off-line routing) ×
/// `lg n` (switching time per delivery cycle).
pub fn theorem10_slowdown_law(n: u64, v: f64) -> f64 {
    let lgn = lg(n) as f64;
    let cap_factor = ((n as f64 / v.powf(2.0 / 3.0)).max(2.0)).log2();
    cap_factor * lgn * lgn
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::CapacityProfile;

    #[test]
    fn node_box_shape() {
        let b = node_box(100, 1.0);
        assert_eq!(b, [10.0, 10.0, 10.0]);
        let b2 = node_box(100, 2.0);
        assert_eq!(b2, [20.0, 20.0, 5.0]);
        // Volume grows linearly with h.
        assert!((node_box_volume(100, 2.0) - 2.0 * node_box_volume(100, 1.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "1 ≤ h ≤ √m")]
    fn node_box_rejects_big_h() {
        let _ = node_box(16, 5.0);
    }

    #[test]
    fn incident_wires_universal() {
        let ft = FatTree::universal(64, 32);
        // Root node: 2·cap(0) + 4·cap(1).
        assert_eq!(
            node_incident_wires(&ft, 0),
            2 * ft.cap_at_level(0) + 4 * ft.cap_at_level(1)
        );
        // Deepest switches connect to processors: cap(L) = 1 each side.
        let l = ft.height() - 1;
        assert_eq!(node_incident_wires(&ft, l), 2 * ft.cap_at_level(l) + 4);
    }

    #[test]
    fn component_count_is_linear_in_n_at_minimum_w() {
        // w = n^(2/3): components = Θ(n).
        let mut prev_per_n = f64::INFINITY;
        for &lgn in &[9u32, 12, 15, 18] {
            let n = 1u64 << lgn;
            let w = 1u64 << (2 * lgn / 3);
            let c = universal_components_exact(n, w);
            let per_n = c / n as f64;
            // per-processor cost should approach a constant (not grow).
            assert!(per_n < 600.0, "per-n components {per_n} at n = {n}");
            assert!(per_n < prev_per_n * 1.5);
            prev_per_n = per_n;
        }
    }

    #[test]
    fn component_count_scales_with_log_at_w_eq_n() {
        // w = n: components = Θ(n·lg n).
        for &lgn in &[8u32, 10, 12] {
            let n = 1u64 << lgn;
            let c = universal_components_exact(n, n);
            let per = c / (n as f64 * lgn as f64);
            assert!(per > 10.0 && per < 600.0, "n lg n law off: {per}");
        }
    }

    #[test]
    fn volume_laws_ordering() {
        // For w ≪ n the universal fat-tree is far cheaper than a hypercube;
        // at w = n it matches the hypercube's n^(3/2) up to log factors.
        let n = 1u64 << 12;
        let cheap = theorem4_volume_law(n, 1 << 8);
        let rich = theorem4_volume_law(n, n);
        let hyper = hypercube_volume_law(n);
        assert!(cheap < rich);
        assert!(
            rich >= hyper,
            "w = n fat-tree should cost at least a hypercube"
        );
        assert!(rich < 40.0 * hyper, "and at most polylog more");
        assert!(planar_volume_law(n) < cheap);
    }

    #[test]
    fn constructive_volume_tracks_law_shape() {
        // Ratio constructive/law should stay within a constant band across n
        // for fixed w-scaling (w = √n·n^(1/6) ≈ n^(2/3)).
        let mut ratios = Vec::new();
        for &lgn in &[9u32, 12, 15] {
            let n = 1u32 << lgn;
            let w = 1u64 << (2 * lgn / 3);
            let ft = FatTree::universal(n, w);
            let ratio = constructive_volume(&ft) / theorem4_volume_law(n as u64, w);
            ratios.push(ratio);
        }
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max / min < 100.0,
            "constructive volume diverges from Theorem 4 law: {ratios:?}"
        );
    }

    #[test]
    fn slowdown_law_is_polylog() {
        let n = 1u64 << 12;
        let v = theorem4_volume_law(n, 1 << 9);
        let s = theorem10_slowdown_law(n, v);
        let lgn = lg(n) as f64;
        assert!(s <= lgn * lgn * lgn + 1e-9);
        assert!(s >= lgn * lgn); // at least lg² n (cap factor ≥ 1)
    }

    #[test]
    fn fat_tree_components_matches_exact_formula() {
        let n = 256u32;
        let w = 64u64;
        let ft = FatTree::new(n, CapacityProfile::Universal { root_capacity: w });
        let a = fat_tree_components(&ft);
        let b = universal_components_exact(n as u64, w);
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }
}
